"""Tests for the parallel experiment runner and its artifact cache."""

import pickle

import pytest

from repro.experiments.harness import ExperimentScale
from repro.runner.cache import ArtifactCache
from repro.runner.executor import SUMMARY_KIND, canonical_summaries_json, run_grid
from repro.runner.spec import ExperimentGrid, ExperimentSpec, TraceSpec, substrate_fingerprint

#: Cheapest legal scale: every runner test simulates at most a few seconds.
TINY = ExperimentScale(dataset_size=60, trace_duration=10.0, num_workers=2, seed=0)


def tiny_spec(**overrides):
    defaults = dict(
        cascade="sdturbo",
        scale=TINY,
        systems=("diffserve",),
        trace=TraceSpec(kind="static", qps=4.0),
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


# ------------------------------------------------------------------- spec hash
def test_spec_hash_is_deterministic_and_sensitive():
    a = tiny_spec()
    b = tiny_spec()
    assert a.content_hash == b.content_hash
    assert a.cache_key == b.cache_key

    changed_seed = tiny_spec(scale=ExperimentScale(60, 10.0, 2, seed=1))
    changed_size = tiny_spec(scale=ExperimentScale(80, 10.0, 2, seed=0))
    changed_qps = tiny_spec(trace=TraceSpec(kind="static", qps=8.0))
    changed_params = tiny_spec().with_params(slo=3.0)
    hashes = {s.content_hash for s in (a, changed_seed, changed_size, changed_qps, changed_params)}
    assert len(hashes) == 5


def test_spec_validation_rejects_bad_inputs():
    with pytest.raises(ValueError):
        tiny_spec(systems=())
    with pytest.raises(ValueError):
        tiny_spec(params=(("not-a-knob", 1),))
    with pytest.raises(ValueError):
        TraceSpec(kind="static", qps=None)
    with pytest.raises(ValueError):
        TraceSpec(kind="weird")


def test_substrate_fingerprint_tracks_zoo_calibration():
    before = substrate_fingerprint("sdturbo")
    assert before == substrate_fingerprint("sdturbo")
    assert before != substrate_fingerprint("sdxs")


def test_grid_product_and_hash():
    grid = ExperimentGrid.product(
        cascades=("sdturbo",),
        base_scale=TINY,
        seeds=(0, 1),
        systems=("diffserve",),
        traces=(TraceSpec(kind="static", qps=4.0), TraceSpec(kind="static", qps=8.0)),
    )
    assert len(grid) == 4
    assert len({spec.content_hash for spec in grid}) == 4
    assert grid.content_hash == ExperimentGrid.of(list(grid)).content_hash


# ----------------------------------------------------------------------- cache
def test_cache_put_get_roundtrip_and_stats(tmp_path):
    cache = ArtifactCache(root=tmp_path)
    assert cache.get("kind", "k") is None
    cache.put("kind", "k", {"x": 1.5})
    assert cache.get("kind", "k") == {"x": 1.5}
    assert cache.stats.hits == 1 and cache.stats.misses == 1 and cache.stats.puts == 1


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ArtifactCache(root=tmp_path)
    cache.put("kind", "k", [1, 2, 3])
    cache.path_for("kind", "k").write_bytes(b"not a pickle")
    assert cache.get("kind", "k", default="fallback") == "fallback"
    assert cache.stats.errors == 1
    # memoize recomputes and repairs the entry
    assert cache.memoize("kind", "k", lambda: [4, 5]) == [4, 5]
    with open(cache.path_for("kind", "k"), "rb") as handle:
        assert pickle.load(handle) == [4, 5]


def test_cache_disabled_never_touches_disk(tmp_path):
    cache = ArtifactCache(root=tmp_path, enabled=False)
    cache.put("kind", "k", 1)
    assert cache.get("kind", "k") is None
    assert list(cache.entries()) == []


def test_cache_rejects_path_traversal_keys(tmp_path):
    cache = ArtifactCache(root=tmp_path)
    for bad in ("", "a/b", ".sneaky"):
        with pytest.raises(ValueError):
            cache.path_for("kind", bad)


def test_cache_clear_by_kind(tmp_path):
    cache = ArtifactCache(root=tmp_path)
    cache.put("a", "k1", 1)
    cache.put("a", "k2", 2)
    cache.put("b", "k1", 3)
    assert cache.clear("a") == 2
    assert cache.get("b", "k1") == 3
    assert cache.clear() == 1


# ------------------------------------------------------------------- execution
def grid_2x2():
    return ExperimentGrid.product(
        cascades=("sdturbo",),
        base_scale=TINY,
        seeds=(0, 1),
        systems=("diffserve",),
        traces=(TraceSpec(kind="static", qps=4.0), TraceSpec(kind="static", qps=8.0)),
    )


def test_parallel_equals_serial_byte_identical(tmp_path):
    grid = grid_2x2()
    serial = run_grid(grid, jobs=1, cache=ArtifactCache(root=tmp_path / "serial"))
    parallel = run_grid(grid, jobs=2, cache=ArtifactCache(root=tmp_path / "parallel"))
    assert serial.ok and parallel.ok
    assert parallel.cached_count == 0
    for s_cell, p_cell in zip(serial.cells, parallel.cells):
        assert s_cell.status == "ok" and p_cell.status == "ok"
        assert canonical_summaries_json(s_cell.summaries) == canonical_summaries_json(
            p_cell.summaries
        )


def test_second_run_is_fully_cached_without_simulation(tmp_path, monkeypatch):
    grid = ExperimentGrid.of([tiny_spec()])
    cache = ArtifactCache(root=tmp_path)
    first = run_grid(grid, jobs=1, cache=cache)
    assert first.ok and first.cached_count == 0

    # A cache hit must never reach the simulation layer.
    import repro.runner.executor as executor

    def boom(*args, **kwargs):
        raise AssertionError("simulation ran despite a cached summary")

    monkeypatch.setattr(executor, "run_cell", boom)
    second = run_grid(grid, jobs=1, cache=ArtifactCache(root=tmp_path))
    assert second.ok
    assert second.cached_count == len(grid)
    assert canonical_summaries_json(second.cells[0].summaries) == canonical_summaries_json(
        first.cells[0].summaries
    )


def test_cache_key_misses_on_changed_seed_or_scale(tmp_path):
    cache = ArtifactCache(root=tmp_path)
    run_grid(ExperimentGrid.of([tiny_spec()]), jobs=1, cache=cache)
    changed = ExperimentGrid.of([tiny_spec(scale=ExperimentScale(60, 10.0, 2, seed=7))])
    report = run_grid(changed, jobs=1, cache=ArtifactCache(root=tmp_path))
    assert report.cached_count == 0 and report.ok


def test_failing_cell_is_isolated_serial_and_parallel(tmp_path):
    good = tiny_spec()
    bad_system = tiny_spec(systems=("no-such-system",))
    grid = ExperimentGrid.of([bad_system, good])
    for jobs in (1, 2):
        report = run_grid(grid, jobs=jobs, cache=ArtifactCache(root=tmp_path / f"j{jobs}"))
        assert not report.ok
        assert report.cells[0].status == "error"
        assert "no-such-system" in report.cells[0].error
        assert report.cells[1].ok


def test_unknown_cascade_fails_without_crashing_the_grid(tmp_path):
    grid = ExperimentGrid.of([tiny_spec(cascade="not-a-cascade"), tiny_spec()])
    report = run_grid(grid, jobs=1, cache=ArtifactCache(root=tmp_path))
    assert report.cells[0].status == "error"
    assert report.cells[1].ok


def test_use_cache_false_bypasses_existing_entries(tmp_path):
    cache = ArtifactCache(root=tmp_path)
    spec = tiny_spec()
    cache.put(SUMMARY_KIND, spec.cache_key, {"diffserve": {"fid": -1.0}})
    report = run_grid(ExperimentGrid.of([spec]), jobs=1, cache=cache, use_cache=False)
    assert report.ok
    assert report.cells[0].status == "ok"
    assert report.cells[0].summaries["diffserve"]["fid"] != -1.0


def test_cell_timeout_reports_timeout_cells(tmp_path):
    report = run_grid(
        ExperimentGrid.of([tiny_spec()]),
        jobs=2,
        cache=ArtifactCache(root=tmp_path),
        cell_timeout=0.01,
    )
    assert not report.ok
    assert report.cells[0].status == "timeout"


# ------------------------------------------------------------------ workloads
def test_trace_spec_workload_kinds_and_params_hash():
    base = tiny_spec(trace=TraceSpec(kind="mmpp", qps=4.0))
    same = tiny_spec(trace=TraceSpec(kind="mmpp", qps=4.0))
    other_kind = tiny_spec(trace=TraceSpec(kind="diurnal", qps=4.0))
    other_params = tiny_spec(trace=TraceSpec(kind="mmpp", qps=4.0, params=(("burst_factor", 6.0),)))
    assert base.content_hash == same.content_hash
    assert len({base.content_hash, other_kind.content_hash, other_params.content_hash}) == 3
    # Params are order-insensitive (sorted into canonical form).
    a = TraceSpec(kind="mmpp", params=(("burst_factor", 6.0), ("dwell_burst", 5.0)))
    b = TraceSpec(kind="mmpp", params=(("dwell_burst", 5.0), ("burst_factor", 6.0)))
    assert a.token() == b.token()


def test_trace_spec_rejects_bad_workload_params():
    with pytest.raises(ValueError):
        TraceSpec(kind="mmpp", params=(("nope", 1.0),))
    with pytest.raises(ValueError):
        TraceSpec(kind="mmpp", params=(("burst_factor", 2.0), ("burst_factor", 3.0)))
    with pytest.raises(ValueError):
        TraceSpec(kind="nonsense")


def test_workload_cells_are_byte_deterministic(tmp_path):
    """Same seed -> byte-identical summaries for every arrival process."""
    from repro.runner.executor import run_cell

    for kind in ("static", "mmpp", "flash-crowd"):
        spec = tiny_spec(
            trace=TraceSpec(kind=kind, qps=4.0 if kind == "static" else None)
        )
        runs = [
            run_cell(spec, cache=ArtifactCache(root=tmp_path / f"{kind}-{i}"))
            for i in range(2)
        ]
        assert canonical_summaries_json(runs[0]) == canonical_summaries_json(runs[1])


def test_workload_grid_sweep_runs_and_caches(tmp_path):
    """A fig4-style sweep over two workloads flows through the cached runner."""
    traces = (TraceSpec(kind="static", qps=4.0), TraceSpec(kind="mmpp", qps=4.0))
    grid = ExperimentGrid.product(
        cascades=("sdturbo",), base_scale=TINY, systems=("diffserve",), traces=traces
    )
    cache = ArtifactCache(root=tmp_path)
    cold = run_grid(grid, jobs=1, cache=cache)
    assert cold.ok and cold.cached_count == 0
    warm = run_grid(grid, jobs=1, cache=cache)
    assert warm.ok and warm.cached_count == len(grid)
    assert warm.summaries_list() == cold.summaries_list()


def test_trace_seed_rerolls_arrivals_but_not_the_azure_shape():
    """TraceSpec.seed overrides arrival sampling only — the curve is stable."""
    from repro.runner.executor import resolve_trace

    base = tiny_spec(trace=TraceSpec(kind="azure"))
    rerolled = tiny_spec(trace=TraceSpec(kind="azure", seed=1))
    curve_a, trace_a = resolve_trace(base)
    curve_b, trace_b = resolve_trace(rerolled)
    import numpy as np

    assert np.allclose(curve_a.rates, curve_b.rates)  # same shape
    assert not np.array_equal(trace_a.arrival_times, trace_b.arrival_times)


# ------------------------------------------------------------ geo/shards axis
def test_geo_and_shards_are_cached_dimensions():
    plain = tiny_spec()
    geo = tiny_spec(geo="us-eu")
    geo4 = tiny_spec(geo="us-eu", shards=4)
    sharded = tiny_spec(shards=4)
    assert len({s.cache_key for s in (plain, geo, geo4, sharded)}) == 4
    assert "us-eu" in geo.label
    assert geo4.label.endswith("shards4")
    # JSON topologies hash by resolved canonical token, not source text.
    json_a = tiny_spec(geo='{"us": {"fleet": {"a100": 2}}, "eu": {"fleet": {"a100": 2}}}')
    json_b = tiny_spec(geo='{"eu": {"fleet": {"a100": 2}}, "us": {"fleet": {"a100": 2}}}')
    assert json_a.cache_key == json_b.cache_key
    assert "geo-json" in json_a.label


def test_spec_rejects_bad_geo_and_shards():
    with pytest.raises(ValueError):
        tiny_spec(shards=0)
    with pytest.raises(ValueError):
        tiny_spec(shards=True)
    with pytest.raises(ValueError):
        tiny_spec(geo="atlantis")
    with pytest.raises(ValueError):
        tiny_spec(geo="{bad json")


def test_grid_product_fans_out_geos_and_applies_shards():
    grid = ExperimentGrid.product(
        cascades=("sdturbo",),
        scales=(TINY,),
        systems=("diffserve",),
        traces=(TraceSpec(kind="static", qps=4.0),),
        geos=(None, "us-eu"),
        shards=2,
    )
    assert len(grid) == 2
    assert [spec.geo for spec in grid] == [None, "us-eu"]
    assert all(spec.shards == 2 for spec in grid)


def test_geo_cell_runs_sharded_and_matches_shard_counts(tmp_path):
    """One grid cell, geo topology, shards=1 vs shards=2: byte-identical."""
    from repro.runner.executor import run_cell

    cache = ArtifactCache(root=tmp_path)
    spec1 = tiny_spec(geo="us-eu", trace=TraceSpec(kind="static", qps=6.0))
    spec2 = tiny_spec(geo="us-eu", shards=2, trace=TraceSpec(kind="static", qps=6.0))
    a = canonical_summaries_json(run_cell(spec1, cache=cache))
    b = canonical_summaries_json(run_cell(spec2, cache=cache))
    assert a == b
