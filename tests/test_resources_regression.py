"""Legacy bit-for-bit regression pins and the runner/CLI resources surface.

The multi-resource refactor must not move a single number for configs that
do not attach a :class:`ResourceConfig` — the golden summaries below were
captured on the pre-refactor tree and every release must reproduce them
exactly (no tolerances).  Also covers the ``num_workers=`` deprecation alias
(warns exactly once per process), the ``resources`` grid dimension of the
cached runner (schema v7), and ``parse_resources`` error surfaces.
"""

import warnings

import pytest

import repro.core.config as core_config
from repro.cli import parse_grid, parse_resources
from repro.core.config import ResourceConfig, fleet_from_counts
from repro.core.system import build_diffserve_system
from repro.experiments.harness import ExperimentScale
from repro.models.zoo import get_cascade
from repro.runner.spec import CACHE_SCHEMA_VERSION, ExperimentGrid, ExperimentSpec
from repro.workloads import make_workload

# Pre-refactor golden summaries (captured at PR 6): adaptive re-planning under
# a flash crowd, and a heterogeneous fleet under MMPP — the two paths that
# exercise the most control-plane machinery.
GOLDEN_REPLAN = {
    "completed": 352.0,
    "deferral_rate": 0.13920454545454544,
    "dropped": 2.0,
    "fid": 18.4136463436761,
    "mean_latency": 0.8601924912424341,
    "mean_quality": 0.7277457801755226,
    "p50_latency": 0.20735231122277575,
    "p99_latency": 3.8771323032797107,
    "slo_violation_ratio": 0.005649717514124294,
    "total_queries": 354.0,
    "fleet_cost": 0.06666666666666667,
}
GOLDEN_FLEET = {
    "completed": 177.0,
    "deferral_rate": 0.192090395480226,
    "dropped": 6.0,
    "fid": 19.421787359657174,
    "mean_latency": 1.103846469388033,
    "mean_quality": 0.7289621317802691,
    "p50_latency": 0.6534978072381605,
    "p99_latency": 4.643622283809266,
    "slo_violation_ratio": 0.03278688524590164,
    "total_queries": 183.0,
    "fleet_cost": 0.04027777777777778,
}


def test_legacy_replan_summary_is_bit_for_bit():
    system = build_diffserve_system(
        "sdturbo",
        num_workers=4,
        dataset_size=120,
        seed=0,
        replan_epoch=3.0,
        replan_policy="adaptive",
    )
    workload = make_workload("flash-crowd", qps=6.0, duration=40.0, seed=0)
    summary = system.run(workload).summary()
    assert summary == GOLDEN_REPLAN


def test_legacy_fleet_summary_is_bit_for_bit():
    system = build_diffserve_system(
        "sdturbo",
        fleet=fleet_from_counts({"a100": 2, "l4": 3}),
        dataset_size=120,
        seed=1,
    )
    workload = make_workload("mmpp", qps=5.0, duration=30.0, seed=1)
    summary = system.run(workload).summary()
    assert summary == GOLDEN_FLEET


def test_resources_enabled_run_differs_but_completes():
    """Sanity check the non-legacy side: resources change behaviour (egress
    exists) without breaking the pipeline."""
    system = build_diffserve_system(
        "sdturbo",
        num_workers=2,
        dataset_size=60,
        seed=0,
        resources=ResourceConfig.default(),
    )
    workload = make_workload("static", qps=2.0, duration=10.0, seed=0)
    summary = system.run(workload).summary()
    assert summary["completed"] > 0
    assert summary["total_queries"] >= summary["completed"]


# ------------------------------------------------------- deprecation warning
def test_num_workers_alias_warns_exactly_once():
    core_config._NUM_WORKERS_ALIAS_WARNED = False
    try:
        cascade = get_cascade("sdturbo")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            core_config.SystemConfig(cascade=cascade, num_workers=2)
            first = [w for w in caught if issubclass(w.category, DeprecationWarning)]
            assert len(first) == 1
            assert "num_workers=" in str(first[0].message)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            core_config.SystemConfig(cascade=cascade, num_workers=3)
            again = [w for w in caught if issubclass(w.category, DeprecationWarning)]
            assert again == []
    finally:
        core_config._NUM_WORKERS_ALIAS_WARNED = True


# --------------------------------------------------------- runner dimension
def test_cache_schema_bumped_for_resources():
    # v7 introduced the resources dimension; v8 added the faults dimension;
    # v9 added the autoscale/prices dimensions and the fleet_cost summary key.
    assert CACHE_SCHEMA_VERSION == 9


def test_spec_token_includes_resolved_resources():
    scale = ExperimentScale()
    bare = ExperimentSpec(cascade="sdturbo", scale=scale)
    assert "resources(" not in bare.token()
    spec = ExperimentSpec(cascade="sdturbo", scale=scale, resources="default")
    assert f"resources({ResourceConfig.default().token()})" in spec.token()
    # Equivalent spellings share one cache entry: the token hashes the
    # *resolved* config, not the CLI string.
    json_spec = ExperimentSpec(
        cascade="sdturbo", scale=scale, resources='{"reload_aware": true}'
    )
    assert json_spec.token() == spec.token()
    oblivious = ExperimentSpec(cascade="sdturbo", scale=scale, resources="oblivious")
    assert oblivious.token() != spec.token()
    # Labels show the CLI spelling ("resources" stands in for raw JSON blobs).
    assert "oblivious" in oblivious.label
    assert "resources" in json_spec.label


def test_spec_rejects_bad_resources_eagerly():
    with pytest.raises(ValueError):
        ExperimentSpec(cascade="sdturbo", scale=ExperimentScale(), resources="not-a-spec")


def test_grid_product_threads_resources():
    grid = ExperimentGrid.product(
        cascades=("sdturbo",),
        resources="default",
    )
    assert all(spec.resources == "default" for spec in grid.specs)
    parsed = parse_grid("cascades=sdturbo;seeds=0,1", ExperimentScale(), resources="oblivious")
    assert len(parsed.specs) == 2
    assert all(spec.resources == "oblivious" for spec in parsed.specs)


# ------------------------------------------------------------- CLI parsing
def test_parse_resources_accepts_named_and_json_forms():
    assert parse_resources("default") == ResourceConfig.default()
    assert parse_resources("oblivious") == ResourceConfig.default(reload_aware=False)
    custom = parse_resources('{"sd-turbo": 30, "sd-v1.5": 60, "reload_aware": false}')
    assert not custom.reload_aware
    assert custom.footprint_for("sd-turbo").weights_gb == 30.0
    with_egress = parse_resources('{"sd-turbo": 5, "egress_gb_per_image": 0.01}')
    assert with_egress.footprint_for("sd-turbo").egress_gb_per_image == 0.01


@pytest.mark.parametrize(
    "text",
    [
        "bogus",
        "{not json",
        '{"sd-turbo": "large"}',
        '{"sd-turbo": -3}',
        '{"reload_aware": "yes"}',
        '{"egress_gb_per_image": "big"}',
    ],
)
def test_parse_resources_rejects_bad_specs(text):
    with pytest.raises(ValueError):
        parse_resources(text)
