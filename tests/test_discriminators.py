"""Tests for classifiers, discriminator architectures and heuristics."""

import numpy as np
import pytest

from repro.discriminators.architectures import ARCHITECTURES, ArchitectureSpec, get_architecture
from repro.discriminators.classifiers import LogisticClassifier, MLPClassifier
from repro.discriminators.heuristics import (
    ClipScoreDiscriminator,
    OracleDiscriminator,
    PickScoreDiscriminator,
    RandomDiscriminator,
)


def _linearly_separable(n=400, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(float)
    return X, y


# ------------------------------------------------------------------ classifiers
def test_logistic_learns_separable_data():
    X, y = _linearly_separable()
    clf = LogisticClassifier(epochs=400)
    clf.fit(X, y)
    assert clf.accuracy(X, y) > 0.95


def test_logistic_probabilities_in_unit_interval():
    X, y = _linearly_separable()
    clf = LogisticClassifier().fit(X, y)
    proba = clf.predict_proba(X)
    assert proba.min() >= 0 and proba.max() <= 1


def test_logistic_input_validation():
    clf = LogisticClassifier()
    with pytest.raises(ValueError):
        clf.fit(np.zeros((5, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        clf.fit(np.zeros((5, 2)), np.array([0, 1, 2, 0, 1]))
    with pytest.raises(RuntimeError):
        clf.predict_proba(np.zeros((1, 2)))


def test_mlp_learns_nonlinear_boundary():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(600, 2))
    y = ((X[:, 0] ** 2 + X[:, 1] ** 2) < 1.0).astype(float)  # circular boundary
    mlp = MLPClassifier(hidden_units=24, epochs=800, learning_rate=0.3, seed=0)
    mlp.fit(X, y)
    assert mlp.accuracy(X, y) > 0.85


def test_mlp_beats_logistic_on_nonlinear_data():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(600, 2))
    y = ((X[:, 0] ** 2 + X[:, 1] ** 2) < 1.0).astype(float)
    logistic_acc = LogisticClassifier(epochs=400).fit(X, y).accuracy(X, y)
    mlp_acc = MLPClassifier(hidden_units=24, epochs=800, learning_rate=0.3).fit(X, y).accuracy(X, y)
    assert mlp_acc > logistic_acc


def test_mlp_requires_fit_before_predict():
    with pytest.raises(RuntimeError):
        MLPClassifier().predict(np.zeros((1, 3)))


# ---------------------------------------------------------------- architectures
def test_architecture_registry_latencies_match_paper():
    assert get_architecture("efficientnet").latency_s == pytest.approx(0.010)
    assert get_architecture("resnet").latency_s == pytest.approx(0.002)
    assert get_architecture("vit").latency_s == pytest.approx(0.005)


def test_architecture_capacity_ordering():
    # EfficientNet extracts the cleanest features, ResNet the noisiest.
    assert (
        ARCHITECTURES["efficientnet-v2"].observation_noise
        < ARCHITECTURES["vit-b-16"].observation_noise
        < ARCHITECTURES["resnet-34"].observation_noise
    )


def test_unknown_architecture_raises():
    with pytest.raises(KeyError):
        get_architecture("alexnet")


def test_architecture_spec_validation():
    with pytest.raises(ValueError):
        ArchitectureSpec(name="x", latency_s=-1.0, observation_noise=0.1)
    with pytest.raises(ValueError):
        ArchitectureSpec(name="x", latency_s=0.1, observation_noise=-0.1)


def test_trained_discriminator_confidence_correlates_with_quality(
    trained_discriminator, light_images
):
    conf = trained_discriminator.confidence_batch(light_images)
    quality = np.array([img.quality for img in light_images])
    corr = np.corrcoef(conf, quality)[0, 1]
    assert corr > 0.1
    assert conf.min() >= 0 and conf.max() <= 1


def test_trained_discriminator_confidence_is_deterministic(trained_discriminator, light_images):
    a = trained_discriminator.confidence(light_images[0])
    b = trained_discriminator.confidence(light_images[0])
    assert a == b


def test_trained_discriminator_batch_matches_single(trained_discriminator, light_images):
    batch = trained_discriminator.confidence_batch(light_images[:5])
    singles = [trained_discriminator.confidence(img) for img in light_images[:5]]
    assert np.allclose(batch, singles)


def test_calibration_spreads_confidence(trained_discriminator, light_images):
    conf = trained_discriminator.confidence_batch(light_images)
    # Saturating clipped calibration: some images pinned at 0 and 1, and the
    # bulk spread in between (not collapsed at one end).
    assert conf.max() == pytest.approx(1.0)
    assert conf.min() == pytest.approx(0.0)
    assert 0.3 < np.median(conf) < 0.7


def test_calibration_requires_enough_images(trained_discriminator, light_images):
    with pytest.raises(ValueError):
        trained_discriminator.calibrate(light_images[:3])


def test_accepts_threshold_semantics(trained_discriminator, light_images):
    image = light_images[0]
    conf = trained_discriminator.confidence(image)
    assert trained_discriminator.accepts(image, threshold=min(conf, 1.0))
    if conf < 1.0:
        assert not trained_discriminator.accepts(image, threshold=min(conf + 1e-6, 1.0))
    with pytest.raises(ValueError):
        trained_discriminator.accepts(image, threshold=1.5)


# ------------------------------------------------------------------- heuristics
def test_random_discriminator_uniform_and_deterministic(light_images):
    disc = RandomDiscriminator(seed=1)
    conf = disc.confidence_batch(light_images)
    assert conf.min() >= 0 and conf.max() <= 1
    assert abs(conf.mean() - 0.5) < 0.1
    assert np.allclose(conf, disc.confidence_batch(light_images))


def test_oracle_discriminator_exposes_quality(light_images):
    disc = OracleDiscriminator()
    for img in light_images[:10]:
        assert disc.confidence(img) == img.quality


def test_pickscore_clipscore_confidences_bounded(light_images):
    for disc in (PickScoreDiscriminator(), ClipScoreDiscriminator()):
        conf = disc.confidence_batch(light_images[:100])
        assert conf.min() >= 0 and conf.max() <= 1


def test_metric_discriminators_worse_than_trained_at_routing(
    trained_discriminator, light_images, heavy_images, coco_dataset
):
    """Figure 1a's core finding: at the same deferral budget, routing by the
    trained discriminator yields a lower FID than routing by PickScore or
    CLIPScore thresholds."""
    from repro.metrics.fid import fid_from_images

    def routed_fid(disc, fraction=0.5):
        conf = disc.confidence_batch(light_images)
        threshold = np.quantile(conf, fraction)
        mixed = [
            heavy_images[i] if conf[i] < threshold else light_images[i]
            for i in range(len(light_images))
        ]
        return fid_from_images(mixed, coco_dataset.real_features)

    trained_fid = routed_fid(trained_discriminator)
    assert trained_fid < routed_fid(PickScoreDiscriminator()) + 0.2
    assert trained_fid < routed_fid(ClipScoreDiscriminator()) + 0.2
