"""Tests for the Worker and LoadBalancer actors."""

import pytest

from repro.core.config import RoutingMode
from repro.core.load_balancer import LoadBalancer
from repro.core.query import Query, QueryStage
from repro.core.worker import WorkItem, Worker
from repro.discriminators.heuristics import OracleDiscriminator
from repro.models.generation import ImageGenerator
from repro.models.zoo import get_variant
from repro.simulator.simulation import Simulator


def make_query(query_id=0, arrival=0.0, difficulty=0.3, slo=5.0):
    return Query(
        query_id=query_id, arrival_time=arrival, prompt="p", difficulty=difficulty, slo=slo
    )


def make_worker(sim, variant_name="sd-turbo", **kwargs):
    return Worker(
        sim,
        worker_id=kwargs.pop("worker_id", 0),
        variant=get_variant(variant_name),
        generator=ImageGenerator(seed=0),
        reload_latency=kwargs.pop("reload_latency", 0.0),
        **kwargs,
    )


# ---------------------------------------------------------------------- worker
def test_worker_executes_single_query_and_reports_completion():
    sim = Simulator(seed=0)
    completions = []
    worker = make_worker(
        sim, on_complete=lambda item, img, conf: completions.append((item, img, conf))
    )
    worker.enqueue(WorkItem(query=make_query(), stage="light", enqueue_time=0.0))
    sim.run(until=10.0)
    assert len(completions) == 1
    item, image, conf = completions[0]
    assert image.variant_name == "sd-turbo"
    assert conf is None  # no discriminator attached
    assert worker.stats.completions == 0 or worker.queue_length == 0  # stats may be collected


def test_worker_batches_up_to_batch_size():
    sim = Simulator(seed=0)
    batches = []
    worker = make_worker(sim, batch_size=4)
    original = worker._complete_batch

    def spy(batch, latency):
        batches.append(len(batch))
        original(batch, latency)

    worker._complete_batch = spy
    for i in range(6):
        worker.enqueue(WorkItem(query=make_query(i), stage="light", enqueue_time=0.0))
    sim.run(until=30.0)
    # First batch starts immediately with 1 query, the rest batch up to 4.
    assert sum(batches) == 6
    assert max(batches) <= 4


def test_worker_discriminator_confidence_attached():
    sim = Simulator(seed=0)
    results = []
    worker = make_worker(
        sim,
        discriminator=OracleDiscriminator(),
        on_complete=lambda item, img, conf: results.append(conf),
    )
    worker.enqueue(WorkItem(query=make_query(), stage="light", enqueue_time=0.0))
    sim.run(until=10.0)
    assert len(results) == 1
    assert 0.0 <= results[0] <= 1.0


def test_worker_drops_queries_past_deadline():
    sim = Simulator(seed=0)
    drops, completions = [], []
    worker = make_worker(
        sim,
        variant_name="sd-v1.5",  # 1.78s per image
        drop_late=True,
        on_complete=lambda item, img, conf: completions.append(item),
        on_drop=lambda item: drops.append(item),
    )
    # SLO of 0.5s cannot be met by a 1.78s model.
    worker.enqueue(WorkItem(query=make_query(slo=0.5), stage="heavy", enqueue_time=0.0))
    sim.run(until=10.0)
    assert len(drops) == 1 and len(completions) == 0


def test_worker_without_drop_policy_completes_late():
    sim = Simulator(seed=0)
    completions = []
    worker = make_worker(
        sim,
        variant_name="sd-v1.5",
        drop_late=False,
        on_complete=lambda item, img, conf: completions.append(item),
    )
    worker.enqueue(WorkItem(query=make_query(slo=0.5), stage="heavy", enqueue_time=0.0))
    sim.run(until=10.0)
    assert len(completions) == 1


def test_worker_variant_switch_incurs_reload():
    sim = Simulator(seed=0)
    completions = []
    worker = make_worker(
        sim, reload_latency=2.0, on_complete=lambda item, img, conf: completions.append(sim.now)
    )
    worker.set_variant(get_variant("sd-v1.5"))
    worker.enqueue(WorkItem(query=make_query(slo=50.0), stage="heavy", enqueue_time=0.0))
    sim.run(until=20.0)
    # Completion must wait for the 2s reload plus ~1.8s execution.
    assert completions and completions[0] > 2.0
    assert worker.variant.name == "sd-v1.5"


def test_worker_same_variant_switch_is_free():
    sim = Simulator(seed=0)
    worker = make_worker(sim, reload_latency=2.0)
    worker.set_variant(get_variant("sd-turbo"))
    assert not worker.busy


def test_worker_stats_collection_resets():
    sim = Simulator(seed=0)
    worker = make_worker(sim)
    worker.enqueue(WorkItem(query=make_query(), stage="light", enqueue_time=0.0))
    sim.run(until=5.0)
    stats = worker.collect_stats()
    assert stats.arrivals == 1 and stats.completions == 1 and stats.batches == 1
    assert worker.stats.arrivals == 0  # reset after collection


def test_worker_batch_size_validation():
    sim = Simulator(seed=0)
    worker = make_worker(sim)
    with pytest.raises(ValueError):
        worker.set_batch_size(0)
    worker.set_batch_size(8)
    assert worker.batch_size == 8


def test_worker_stage_property():
    sim = Simulator(seed=0)
    assert make_worker(sim, worker_id=1).stage == "heavy"
    assert make_worker(sim, worker_id=2, discriminator=OracleDiscriminator()).stage == "light"


# --------------------------------------------------------------- load balancer
def _cascade_setup(sim, threshold, num_light=1, num_heavy=1, slo=20.0):
    responses, drops = [], []
    lb = LoadBalancer(
        sim,
        routing=RoutingMode.CASCADE,
        threshold=threshold,
        on_response=lambda q, img, stage, conf, deferred: responses.append((q, stage, conf)),
        on_drop=lambda q: drops.append(q),
    )
    light_pool = [
        make_worker(sim, worker_id=i, discriminator=OracleDiscriminator()) for i in range(num_light)
    ]
    heavy_pool = [
        make_worker(sim, worker_id=10 + i, variant_name="sd-v1.5") for i in range(num_heavy)
    ]
    lb.set_pools(light_pool, heavy_pool)
    return lb, responses, drops


def test_cascade_accepts_high_confidence_and_defers_low():
    sim = Simulator(seed=0)
    lb, responses, _ = _cascade_setup(sim, threshold=0.7)
    lb.submit(make_query(0, difficulty=0.02, slo=30.0))  # easy -> high quality -> accepted
    lb.submit(make_query(1, difficulty=0.98, slo=30.0))  # hard -> low quality -> deferred
    sim.run(until=40.0)
    stages = {q.query_id: stage for q, stage, _ in responses}
    assert stages[0] == QueryStage.LIGHT
    assert stages[1] == QueryStage.HEAVY
    assert lb.stats.deferred + lb.stats.returned_light + lb.stats.returned_heavy >= 2


def test_threshold_zero_accepts_everything():
    sim = Simulator(seed=0)
    lb, responses, _ = _cascade_setup(sim, threshold=0.0)
    for i in range(5):
        lb.submit(make_query(i, difficulty=0.9, slo=30.0))
    sim.run(until=40.0)
    assert all(stage == QueryStage.LIGHT for _, stage, _ in responses)


def test_threshold_one_defers_most_queries():
    sim = Simulator(seed=0)
    lb, responses, _ = _cascade_setup(sim, threshold=1.0)
    for i in range(5):
        lb.submit(make_query(i, difficulty=0.6, slo=60.0))
    sim.run(until=80.0)
    heavy = sum(1 for _, stage, _ in responses if stage == QueryStage.HEAVY)
    assert heavy >= 4


def test_no_heavy_pool_returns_light_response():
    sim = Simulator(seed=0)
    responses = []
    lb = LoadBalancer(
        sim,
        routing=RoutingMode.CASCADE,
        threshold=1.0,
        on_response=lambda q, img, stage, conf, deferred: responses.append(stage),
    )
    lb.set_pools([make_worker(sim, discriminator=OracleDiscriminator())], [])
    lb.submit(make_query(0, difficulty=0.9))
    sim.run(until=10.0)
    assert responses == [QueryStage.LIGHT]


def test_no_workers_at_all_drops_query():
    sim = Simulator(seed=0)
    drops = []
    lb = LoadBalancer(sim, routing=RoutingMode.CASCADE, on_drop=lambda q: drops.append(q))
    lb.set_pools([], [])
    lb.submit(make_query(0))
    sim.run(until=1.0)
    assert len(drops) == 1


def test_deferral_skipped_when_deadline_too_tight():
    sim = Simulator(seed=0)
    lb, responses, _ = _cascade_setup(sim, threshold=1.0, slo=30.0)
    lb.heavy_latency_estimate = 100.0  # heavy stage can never fit the deadline
    lb.submit(make_query(0, difficulty=0.9, slo=5.0))
    sim.run(until=20.0)
    assert responses and responses[0][1] == QueryStage.LIGHT


def test_single_routing_uses_available_pool():
    sim = Simulator(seed=0)
    responses = []
    lb = LoadBalancer(
        sim,
        routing=RoutingMode.SINGLE,
        on_response=lambda q, img, stage, conf, deferred: responses.append(img.variant_name),
    )
    lb.set_pools([make_worker(sim)], [])
    lb.submit(make_query(0))
    sim.run(until=5.0)
    assert responses == ["sd-turbo"]


def test_random_split_routing_respects_fraction():
    sim = Simulator(seed=1)
    responses = []
    lb = LoadBalancer(
        sim,
        routing=RoutingMode.RANDOM_SPLIT,
        heavy_fraction=1.0,
        on_response=lambda q, img, stage, conf, deferred: responses.append(img.variant_name),
    )
    lb.set_pools(
        [make_worker(sim, worker_id=0)], [make_worker(sim, worker_id=1, variant_name="sd-v1.5")]
    )
    for i in range(8):
        lb.submit(make_query(i, slo=60.0))
    sim.run(until=100.0)
    assert all(name == "sd-v1.5" for name in responses)


def test_least_loaded_worker_selection_spreads_queries():
    sim = Simulator(seed=0)
    lb, _, _ = _cascade_setup(sim, threshold=0.0, num_light=3)
    for i in range(3):
        lb.submit(make_query(i, slo=60.0))
    # Before any execution completes, each light worker should hold <= 1 query
    # (including the one being executed).
    loads = [w.queue_length + (1 if w.busy else 0) for w in lb.light_pool]
    assert max(loads) <= 1


def test_load_balancer_stats_and_window_arrivals():
    sim = Simulator(seed=0)
    lb, _, _ = _cascade_setup(sim, threshold=0.0)
    for i in range(4):
        lb.submit(make_query(i, slo=60.0))
    sim.run(until=20.0)
    assert lb.arrivals_in_window(1000.0) == 4
    stats = lb.collect_stats()
    assert stats.arrivals == 4
    assert lb.stats.arrivals == 0  # reset


def test_threshold_and_fraction_validation():
    sim = Simulator(seed=0)
    lb = LoadBalancer(sim, routing=RoutingMode.CASCADE)
    with pytest.raises(ValueError):
        lb.set_threshold(1.5)
    with pytest.raises(ValueError):
        lb.set_heavy_fraction(-0.1)


# -------------------------------------------------- arrival-history retention
def test_arrival_history_is_pruned_to_the_observation_window():
    sim = Simulator(seed=0)
    lb = LoadBalancer(sim, routing=RoutingMode.CASCADE, observation_window=10.0)
    lb.set_pools([make_worker(sim)], [])
    for i in range(100):
        sim.schedule_at(
            float(i), lambda i=i: lb.submit(make_query(i, arrival=float(i), slo=300.0))
        )
    sim.run(until=99.0)
    # Memory stays bounded by the window's arrival count, not the whole run.
    assert len(lb._arrival_times) <= 11
    assert lb.arrivals_in_window(5.0) == 6  # t in [94, 99], cutoff inclusive
    assert lb.stats.arrivals == 100  # the counters still see every arrival


def test_arrivals_in_window_counts_only_recent_arrivals():
    sim = Simulator(seed=0)
    lb = LoadBalancer(sim, routing=RoutingMode.CASCADE, observation_window=50.0)
    lb.set_pools([make_worker(sim)], [])
    for t in (0.0, 10.0, 20.0, 30.0):
        sim.schedule_at(t, lambda t=t: lb.submit(make_query(int(t), arrival=t, slo=300.0)))
    sim.run(until=35.0)
    assert lb.arrivals_in_window(6.0) == 1  # only t=30
    assert lb.arrivals_in_window(16.0) == 2  # t=20 and t=30
    assert lb.arrivals_in_window(50.0) == 4


def test_observation_window_must_be_positive():
    sim = Simulator(seed=0)
    with pytest.raises(ValueError):
        LoadBalancer(sim, routing=RoutingMode.CASCADE, observation_window=0.0)


# ------------------------------------------------- deferral-rate edge cases
def test_observed_deferral_rate_is_none_without_light_decisions():
    from repro.core.load_balancer import LoadBalancerStats

    stats = LoadBalancerStats()
    assert stats.observed_deferral_rate is None
    # Heavy completions and drops alone are not light-stage decisions.
    stats.returned_heavy = 5
    stats.dropped = 3
    assert stats.observed_deferral_rate is None


def test_observed_deferral_rate_all_deferred_window():
    from repro.core.load_balancer import LoadBalancerStats

    stats = LoadBalancerStats(deferred=7, returned_light=0)
    assert stats.observed_deferral_rate == pytest.approx(1.0)
    stats.reset()
    assert stats.observed_deferral_rate is None


def test_observed_deferral_rate_mixed_window():
    from repro.core.load_balancer import LoadBalancerStats

    stats = LoadBalancerStats(deferred=1, returned_light=3)
    assert stats.observed_deferral_rate == pytest.approx(0.25)


# --------------------------------------------------- drop-wave stack safety
def test_worker_drop_wave_of_stale_queries_does_not_recurse():
    """A flash crowd of already-late queries must drain iteratively.

    Regression test: ``_maybe_start_batch`` used to recurse once per dropped
    wave, so thousands of stale queries (each wave fully dropped at dequeue
    time) blew the interpreter stack.  With ``batch_size=1`` every dropped
    query is its own wave — recursion would go ``n`` frames deep.
    """
    sim = Simulator(seed=0)
    drops = []
    worker = make_worker(sim, batch_size=1, on_drop=drops.append)
    worker.busy = True  # hold the worker so the stale queue builds up
    n = 5000  # far past the default recursion limit
    for i in range(n):
        worker.enqueue(WorkItem(query=make_query(i, slo=1e-9), stage="light", enqueue_time=0.0))
    worker.busy = False
    worker._maybe_start_batch()  # RecursionError under the old implementation
    assert len(drops) == n
    assert worker.stats.drops == n
    assert worker.queue_length == 0
    assert not worker.busy


def test_worker_drop_resubmit_chain_does_not_recurse():
    """An ``on_drop`` handler that re-enqueues must not recurse per wave.

    Regression test for the deeper failure mode: each drop triggering a
    synchronous resubmit of another already-late query used to chain
    ``enqueue -> _maybe_start_batch -> on_drop -> enqueue -> ...`` one stack
    frame per drop wave.
    """
    sim = Simulator(seed=0)
    state = {"resubmitted": 0}
    n = 5000  # far past the default recursion limit

    def resubmit(_item):
        if state["resubmitted"] < n:
            state["resubmitted"] += 1
            worker.enqueue(
                WorkItem(
                    query=make_query(state["resubmitted"], slo=1e-9),
                    stage="light",
                    enqueue_time=0.0,
                )
            )

    worker = make_worker(sim, batch_size=1, on_drop=resubmit)
    worker.enqueue(WorkItem(query=make_query(0, slo=1e-9), stage="light", enqueue_time=0.0))
    assert state["resubmitted"] == n
    assert worker.stats.drops == n + 1
    assert worker.queue_length == 0
    assert not worker.busy


# ------------------------------------------------------- incremental pool index
def _reference_least_loaded(pool):
    """The O(pool) scan the incremental index must reproduce exactly."""
    return min(pool, key=lambda w: (w.load, w.worker_id))


def test_pool_index_matches_reference_scan_throughout_a_run():
    """The lazy-heap index and the linear scan must agree at every decision.

    Drives a cascade through submissions, completions, deferrals, a worker
    crash, and a queue drain, asserting after every step that
    ``_least_loaded`` picks exactly the worker the reference scan would.
    """
    sim = Simulator(seed=0)
    lb, _, _ = _cascade_setup(sim, threshold=0.7, num_light=4, num_heavy=3)
    checks = {"n": 0}

    def check():
        for pool in (lb.light_pool, lb.heavy_pool):
            assert lb._least_loaded(pool) is _reference_least_loaded(pool)
        checks["n"] += 1

    def submit_and_check(i):
        lb.submit(make_query(i, difficulty=(i % 10) / 10.0, slo=60.0))
        check()

    for i in range(60):
        sim.schedule_at(0.03 * i, lambda i=i: submit_and_check(i))
    # Probe between completions too, not only at submit instants.
    for k in range(1, 40):
        sim.schedule_at(0.047 * k, check)
    # Mid-run load mutations that bypass the enqueue path.
    sim.schedule_at(0.7, lambda: (lb.light_pool[1].fail(), check()))
    sim.schedule_at(1.1, lambda: (lb.heavy_pool[0].drain_queue(), check()))
    sim.run(until=30.0)
    assert checks["n"] >= 100


def test_pool_index_foreign_pool_falls_back_to_scan():
    """Ad-hoc pools (not the LB's own lists) still resolve, via the scan."""
    sim = Simulator(seed=0)
    lb, _, _ = _cascade_setup(sim, threshold=0.7, num_light=3)
    foreign = list(reversed(lb.light_pool))
    assert lb._least_loaded(foreign) is _reference_least_loaded(foreign)


def test_workitem_wrappers_are_recycled():
    """Completed items return to the free list and back out on reuse."""
    sim = Simulator(seed=0)
    lb, responses, _ = _cascade_setup(sim, threshold=0.0)
    lb.submit(make_query(0, slo=60.0))
    sim.run(until=20.0)
    assert len(responses) == 1
    assert len(lb._item_free) == 1
    recycled = lb._item_free[-1]
    assert recycled.query is None  # no dangling reference to the old query
    lb.submit(make_query(1, slo=60.0))
    assert not lb._item_free  # the parked wrapper was reused
