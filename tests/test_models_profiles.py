"""Tests for latency profiles."""

import numpy as np
import pytest

from repro.models.profiles import DEFAULT_BATCH_SIZES, LatencyProfile, ProfiledTable, merge_profiles


def test_latency_increases_with_batch_size():
    profile = LatencyProfile(per_image=0.5)
    latencies = [profile.latency(b) for b in DEFAULT_BATCH_SIZES]
    assert all(b > a for a, b in zip(latencies, latencies[1:]))


def test_throughput_increases_with_batch_size():
    profile = LatencyProfile(per_image=0.5, batching_gain=0.25)
    throughputs = [profile.throughput(b) for b in DEFAULT_BATCH_SIZES]
    assert all(b > a for a, b in zip(throughputs, throughputs[1:]))


def test_batching_efficiency_bounds():
    profile = LatencyProfile(per_image=1.0, batching_gain=0.3)
    assert profile.batching_efficiency(1) == pytest.approx(1.0)
    assert profile.batching_efficiency(1000) == pytest.approx(0.7, abs=1e-3)


def test_sample_latency_without_rng_is_deterministic():
    profile = LatencyProfile(per_image=1.0)
    assert profile.sample_latency(4) == profile.latency(4)


def test_sample_latency_jitter_is_bounded_and_positive():
    profile = LatencyProfile(per_image=1.0, jitter=0.05)
    rng = np.random.default_rng(0)
    samples = [profile.sample_latency(2, rng) for _ in range(200)]
    base = profile.latency(2)
    assert all(s > 0 for s in samples)
    assert np.mean(samples) == pytest.approx(base, rel=0.05)


def test_as_table_matches_latency():
    profile = LatencyProfile(per_image=0.2)
    table = profile.as_table()
    for batch, latency in table.items():
        assert latency == pytest.approx(profile.latency(batch))


def test_best_batch_for_deadline():
    profile = LatencyProfile(per_image=1.0, fixed_overhead=0.0, batching_gain=0.0)
    assert profile.best_batch_for_deadline(4.5) == 4
    assert profile.best_batch_for_deadline(0.5) is None


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        LatencyProfile(per_image=0.0)
    with pytest.raises(ValueError):
        LatencyProfile(per_image=1.0, batching_gain=1.0)
    with pytest.raises(ValueError):
        LatencyProfile(per_image=1.0, fixed_overhead=-0.1)
    with pytest.raises(ValueError):
        LatencyProfile(per_image=1.0, jitter=-0.1)
    with pytest.raises(ValueError):
        LatencyProfile(per_image=1.0).latency(0)


def test_profiled_table_blends_observations():
    table = ProfiledTable(profile=LatencyProfile(per_image=1.0), alpha=0.5)
    offline = table.latency(2)
    table.observe(2, offline * 2)
    blended = table.latency(2)
    assert offline < blended < offline * 2
    # Unobserved batch sizes still come from the offline profile.
    assert table.latency(4) == pytest.approx(table.profile.latency(4))


def test_profiled_table_rejects_nonpositive_latency():
    table = ProfiledTable(profile=LatencyProfile(per_image=1.0))
    with pytest.raises(ValueError):
        table.observe(1, 0.0)


def test_profiled_table_throughput_consistent():
    table = ProfiledTable(profile=LatencyProfile(per_image=1.0))
    assert table.throughput(4) == pytest.approx(4 / table.latency(4))


def test_merge_profiles_averages_fields():
    a = LatencyProfile(per_image=1.0, fixed_overhead=0.0)
    b = LatencyProfile(per_image=3.0, fixed_overhead=0.2)
    merged = merge_profiles([a, b])
    assert merged.per_image == pytest.approx(2.0)
    assert merged.fixed_overhead == pytest.approx(0.1)


def test_merge_profiles_empty_rejected():
    with pytest.raises(ValueError):
        merge_profiles([])
