"""Tests for the MILP toolkit (problem construction and both solvers)."""

import numpy as np
import pytest

from repro.milp.branch_and_bound import BranchAndBoundSolver
from repro.milp.exhaustive import ExhaustiveSolver
from repro.milp.problem import MILPProblem, Variable
from repro.milp.solution import SolveStatus


def knapsack_problem():
    """A tiny knapsack: maximise 10a + 6b + 4c s.t. 5a + 4b + 3c <= 8, binary."""
    p = MILPProblem("knapsack")
    for name in ("a", "b", "c"):
        p.add_binary(name)
    p.set_objective({"a": 10, "b": 6, "c": 4})
    p.add_le({"a": 5, "b": 4, "c": 3}, 8)
    return p


def test_problem_construction_and_validation():
    p = MILPProblem()
    p.add_integer("x", lower=0, upper=5)
    p.add_continuous("y", lower=0, upper=1)
    with pytest.raises(ValueError):
        p.add_integer("x")  # duplicate
    with pytest.raises(KeyError):
        p.add_le({"z": 1.0}, 1.0)  # unknown variable
    with pytest.raises(KeyError):
        p.set_objective({"z": 1.0})
    with pytest.raises(ValueError):
        Variable(name="bad", lower=2.0, upper=1.0)


def test_is_feasible_checks_bounds_integrality_and_constraints():
    p = MILPProblem()
    p.add_integer("x", lower=0, upper=5)
    p.add_le({"x": 1.0}, 3.0)
    assert p.is_feasible({"x": 2.0})
    assert not p.is_feasible({"x": 2.5})  # not integral
    assert not p.is_feasible({"x": 4.0})  # violates constraint
    assert not p.is_feasible({"x": -1.0})  # below bound
    assert not p.is_feasible({})  # missing variable


def test_objective_value():
    p = knapsack_problem()
    assert p.objective_value({"a": 1, "b": 0, "c": 1}) == pytest.approx(14.0)


def test_branch_and_bound_solves_knapsack():
    solution = BranchAndBoundSolver().solve(knapsack_problem())
    assert solution.is_optimal
    assert solution.objective == pytest.approx(14.0)
    assert solution.get_int("a") == 1 and solution.get_int("c") == 1


def test_exhaustive_solves_knapsack():
    solution = ExhaustiveSolver().solve(knapsack_problem())
    assert solution.is_optimal
    assert solution.objective == pytest.approx(14.0)


def test_mixed_integer_continuous_problem():
    # maximise 3x + y with x integer <= 4.3 constraint region.
    p = MILPProblem()
    p.add_integer("x", lower=0, upper=10)
    p.add_continuous("y", lower=0, upper=10)
    p.set_objective({"x": 3, "y": 1})
    p.add_le({"x": 1, "y": 1}, 6.5)
    p.add_le({"x": 1}, 4.3)
    for solver in (BranchAndBoundSolver(), ExhaustiveSolver()):
        solution = solver.solve(p)
        assert solution.is_optimal
        assert solution.get_int("x") == 4
        assert solution["y"] == pytest.approx(2.5, abs=1e-5)
        assert solution.objective == pytest.approx(14.5, abs=1e-5)


def test_infeasible_problem_detected():
    p = MILPProblem()
    p.add_integer("x", lower=0, upper=5)
    p.set_objective({"x": 1})
    p.add_ge({"x": 1}, 10)
    for solver in (BranchAndBoundSolver(), ExhaustiveSolver()):
        assert solver.solve(p).status == SolveStatus.INFEASIBLE


def test_equality_constraints_respected():
    p = MILPProblem()
    p.add_integer("x", lower=0, upper=10)
    p.add_integer("y", lower=0, upper=10)
    p.set_objective({"x": 1, "y": 2})
    p.add_eq({"x": 1, "y": 1}, 7)
    solution = BranchAndBoundSolver().solve(p)
    assert solution.is_optimal
    assert solution.get_int("x") + solution.get_int("y") == 7
    assert solution.get_int("y") == 7  # maximising prefers all-y


def test_branch_and_bound_matches_exhaustive_on_random_problems():
    rng = np.random.default_rng(42)
    for trial in range(10):
        p = MILPProblem(f"random-{trial}")
        n = 4
        for i in range(n):
            p.add_integer(f"x{i}", lower=0, upper=4)
        p.set_objective({f"x{i}": float(rng.uniform(0.5, 3)) for i in range(n)})
        # Two random <= constraints keep the problem bounded and non-trivial.
        for c in range(2):
            coeffs = {f"x{i}": float(rng.uniform(0.5, 2)) for i in range(n)}
            p.add_le(coeffs, float(rng.uniform(4, 10)))
        bnb = BranchAndBoundSolver().solve(p)
        exh = ExhaustiveSolver().solve(p)
        assert bnb.is_optimal and exh.is_optimal
        assert bnb.objective == pytest.approx(exh.objective, abs=1e-6)


def test_exhaustive_rejects_unbounded_integer():
    p = MILPProblem()
    p.add_integer("x", lower=0, upper=None)
    p.set_objective({"x": 1})
    with pytest.raises(ValueError):
        ExhaustiveSolver().solve(p)


def test_exhaustive_respects_combination_limit():
    p = MILPProblem()
    for i in range(6):
        p.add_integer(f"x{i}", lower=0, upper=9)
    p.set_objective({"x0": 1})
    with pytest.raises(ValueError):
        ExhaustiveSolver(max_combinations=1000).solve(p)


def test_binary_formulation_to_matrices_roundtrip():
    p = knapsack_problem()
    mats = p.to_matrices()
    assert mats["A_ub"].shape == (1, 3)
    assert len(mats["bounds"]) == 3
    assert all(b == (0.0, 1.0) for b in mats["bounds"])
    # Objective is negated for minimisation.
    assert mats["c"][mats["order"].index("a")] == pytest.approx(-10.0)


def test_solution_solve_time_recorded():
    solution = BranchAndBoundSolver().solve(knapsack_problem())
    assert solution.solve_time_s > 0
    assert solution.nodes_explored >= 1


# ------------------------------------------------------------- warm starts
def fraction_problem(demand, *, t1=2.1, t2=1.3, S=16):
    """The allocator's online formulation: max f over (x1, x2, f)."""
    p = MILPProblem("fraction")
    p.add_integer("x1", lower=1, upper=S)
    p.add_integer("x2", lower=0, upper=S)
    p.add_continuous("f", lower=0.0, upper=1.0)
    p.set_objective({"f": 1.0})
    p.add_ge({"x1": t1}, demand, name="light-throughput")
    p.add_le({"f": demand, "x2": -t2}, 0.0, name="heavy-throughput")
    p.add_le({"x1": 1.0, "x2": 1.0}, S, name="device-budget")
    return p


def test_warm_start_seeds_incumbent_and_matches_cold_optimum():
    problem = fraction_problem(14.0)
    cold = BranchAndBoundSolver().solve(problem)
    assert cold.is_optimal and not cold.warm_start_used

    warm = BranchAndBoundSolver().solve(problem, warm_start=cold.values)
    assert warm.is_optimal
    assert warm.warm_start_used
    assert warm.objective == pytest.approx(cold.objective)
    assert warm.lp_solves <= cold.lp_solves


def test_warm_start_prunes_root_when_relaxation_is_tight():
    # Low demand: the LP relaxation already hits the f <= 1 cap, so a warm
    # incumbent matching it lets the solve finish after the root LP alone.
    problem = fraction_problem(2.0)
    cold = BranchAndBoundSolver().solve(problem)
    assert cold.objective == pytest.approx(1.0)
    warm = BranchAndBoundSolver().solve(problem, warm_start=cold.values)
    assert warm.is_optimal and warm.warm_start_used
    assert warm.lp_solves == 1


def test_infeasible_warm_start_is_ignored():
    problem = fraction_problem(14.0)
    # x1 too small for the light-throughput constraint at this demand.
    bogus = {"x1": 1.0, "x2": 10.0, "f": 0.9}
    solution = BranchAndBoundSolver().solve(problem, warm_start=bogus)
    assert solution.is_optimal
    assert not solution.warm_start_used
    assert solution.objective == pytest.approx(
        BranchAndBoundSolver().solve(problem).objective
    )


def test_warm_start_with_missing_variables_is_ignored():
    problem = fraction_problem(14.0)
    solution = BranchAndBoundSolver().solve(problem, warm_start={"x1": 7.0})
    assert solution.is_optimal
    assert not solution.warm_start_used


def test_solver_counts_lp_relaxations():
    solver = BranchAndBoundSolver()
    assert solver.total_lp_solves == 0
    first = solver.solve(fraction_problem(14.0))
    assert first.lp_solves >= 1
    assert solver.total_lp_solves == first.lp_solves
    second = solver.solve(fraction_problem(20.0))
    assert solver.total_lp_solves == first.lp_solves + second.lp_solves


# --------------------------------------------- exhaustive closed-form path
def test_exhaustive_single_continuous_runs_without_lps():
    solver = ExhaustiveSolver()
    problem = fraction_problem(8.0, S=6)
    solution = solver.solve(problem)
    reference = BranchAndBoundSolver().solve(problem)
    assert solution.is_optimal
    assert solution.objective == pytest.approx(reference.objective)
    assert solution.lp_solves == 0
    assert solver.total_lp_solves == 0
    assert problem.is_feasible(solution.values, tol=1e-6)


def test_exhaustive_single_continuous_equality_pin():
    p = MILPProblem("pin")
    p.add_integer("x", lower=0, upper=3)
    p.add_continuous("y", lower=0.0, upper=10.0)
    p.set_objective({"x": 1.0, "y": 1.0})
    p.add_eq({"y": 2.0, "x": 1.0}, 4.0)  # y = (4 - x) / 2
    solution = ExhaustiveSolver().solve(p)
    assert solution.is_optimal
    # x=0 gives y=2 (obj 2); x=3 gives y=0.5 (obj 3.5) — the max.
    assert solution.objective == pytest.approx(3.5)
    assert solution.values["x"] == pytest.approx(3.0)
    assert solution.lp_solves == 0


def test_exhaustive_warm_start_keeps_previous_solution_on_ties():
    p = MILPProblem("ties")
    p.add_integer("x", lower=0, upper=4)
    p.add_integer("y", lower=0, upper=4)
    p.set_objective({"x": 1.0, "y": 1.0})
    p.add_le({"x": 1.0, "y": 1.0}, 4.0)
    # Many assignments reach the optimum 4; a feasible warm start at the
    # optimum must be returned verbatim (plan stability under ties).
    warm = {"x": 1.0, "y": 3.0}
    solution = ExhaustiveSolver().solve(p, warm_start=warm)
    assert solution.is_optimal and solution.warm_start_used
    assert solution.objective == pytest.approx(4.0)
    assert solution.values == {"x": 1, "y": 3}


def test_exhaustive_infeasible_warm_start_ignored():
    p = fraction_problem(8.0, S=6)
    solution = ExhaustiveSolver().solve(p, warm_start={"x1": 1.0, "x2": 1.0, "f": 1.0})
    assert solution.is_optimal
    assert not solution.warm_start_used
