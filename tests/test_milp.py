"""Tests for the MILP toolkit (problem construction and both solvers)."""

import numpy as np
import pytest

from repro.milp.branch_and_bound import BranchAndBoundSolver
from repro.milp.exhaustive import ExhaustiveSolver
from repro.milp.problem import MILPProblem, Variable
from repro.milp.solution import SolveStatus


def knapsack_problem():
    """A tiny knapsack: maximise 10a + 6b + 4c s.t. 5a + 4b + 3c <= 8, binary."""
    p = MILPProblem("knapsack")
    for name in ("a", "b", "c"):
        p.add_binary(name)
    p.set_objective({"a": 10, "b": 6, "c": 4})
    p.add_le({"a": 5, "b": 4, "c": 3}, 8)
    return p


def test_problem_construction_and_validation():
    p = MILPProblem()
    p.add_integer("x", lower=0, upper=5)
    p.add_continuous("y", lower=0, upper=1)
    with pytest.raises(ValueError):
        p.add_integer("x")  # duplicate
    with pytest.raises(KeyError):
        p.add_le({"z": 1.0}, 1.0)  # unknown variable
    with pytest.raises(KeyError):
        p.set_objective({"z": 1.0})
    with pytest.raises(ValueError):
        Variable(name="bad", lower=2.0, upper=1.0)


def test_is_feasible_checks_bounds_integrality_and_constraints():
    p = MILPProblem()
    p.add_integer("x", lower=0, upper=5)
    p.add_le({"x": 1.0}, 3.0)
    assert p.is_feasible({"x": 2.0})
    assert not p.is_feasible({"x": 2.5})  # not integral
    assert not p.is_feasible({"x": 4.0})  # violates constraint
    assert not p.is_feasible({"x": -1.0})  # below bound
    assert not p.is_feasible({})  # missing variable


def test_objective_value():
    p = knapsack_problem()
    assert p.objective_value({"a": 1, "b": 0, "c": 1}) == pytest.approx(14.0)


def test_branch_and_bound_solves_knapsack():
    solution = BranchAndBoundSolver().solve(knapsack_problem())
    assert solution.is_optimal
    assert solution.objective == pytest.approx(14.0)
    assert solution.get_int("a") == 1 and solution.get_int("c") == 1


def test_exhaustive_solves_knapsack():
    solution = ExhaustiveSolver().solve(knapsack_problem())
    assert solution.is_optimal
    assert solution.objective == pytest.approx(14.0)


def test_mixed_integer_continuous_problem():
    # maximise 3x + y with x integer <= 4.3 constraint region.
    p = MILPProblem()
    p.add_integer("x", lower=0, upper=10)
    p.add_continuous("y", lower=0, upper=10)
    p.set_objective({"x": 3, "y": 1})
    p.add_le({"x": 1, "y": 1}, 6.5)
    p.add_le({"x": 1}, 4.3)
    for solver in (BranchAndBoundSolver(), ExhaustiveSolver()):
        solution = solver.solve(p)
        assert solution.is_optimal
        assert solution.get_int("x") == 4
        assert solution["y"] == pytest.approx(2.5, abs=1e-5)
        assert solution.objective == pytest.approx(14.5, abs=1e-5)


def test_infeasible_problem_detected():
    p = MILPProblem()
    p.add_integer("x", lower=0, upper=5)
    p.set_objective({"x": 1})
    p.add_ge({"x": 1}, 10)
    for solver in (BranchAndBoundSolver(), ExhaustiveSolver()):
        assert solver.solve(p).status == SolveStatus.INFEASIBLE


def test_equality_constraints_respected():
    p = MILPProblem()
    p.add_integer("x", lower=0, upper=10)
    p.add_integer("y", lower=0, upper=10)
    p.set_objective({"x": 1, "y": 2})
    p.add_eq({"x": 1, "y": 1}, 7)
    solution = BranchAndBoundSolver().solve(p)
    assert solution.is_optimal
    assert solution.get_int("x") + solution.get_int("y") == 7
    assert solution.get_int("y") == 7  # maximising prefers all-y


def test_branch_and_bound_matches_exhaustive_on_random_problems():
    rng = np.random.default_rng(42)
    for trial in range(10):
        p = MILPProblem(f"random-{trial}")
        n = 4
        for i in range(n):
            p.add_integer(f"x{i}", lower=0, upper=4)
        p.set_objective({f"x{i}": float(rng.uniform(0.5, 3)) for i in range(n)})
        # Two random <= constraints keep the problem bounded and non-trivial.
        for c in range(2):
            coeffs = {f"x{i}": float(rng.uniform(0.5, 2)) for i in range(n)}
            p.add_le(coeffs, float(rng.uniform(4, 10)))
        bnb = BranchAndBoundSolver().solve(p)
        exh = ExhaustiveSolver().solve(p)
        assert bnb.is_optimal and exh.is_optimal
        assert bnb.objective == pytest.approx(exh.objective, abs=1e-6)


def test_exhaustive_rejects_unbounded_integer():
    p = MILPProblem()
    p.add_integer("x", lower=0, upper=None)
    p.set_objective({"x": 1})
    with pytest.raises(ValueError):
        ExhaustiveSolver().solve(p)


def test_exhaustive_respects_combination_limit():
    p = MILPProblem()
    for i in range(6):
        p.add_integer(f"x{i}", lower=0, upper=9)
    p.set_objective({"x0": 1})
    with pytest.raises(ValueError):
        ExhaustiveSolver(max_combinations=1000).solve(p)


def test_binary_formulation_to_matrices_roundtrip():
    p = knapsack_problem()
    mats = p.to_matrices()
    assert mats["A_ub"].shape == (1, 3)
    assert len(mats["bounds"]) == 3
    assert all(b == (0.0, 1.0) for b in mats["bounds"])
    # Objective is negated for minimisation.
    assert mats["c"][mats["order"].index("a")] == pytest.approx(-10.0)


def test_solution_solve_time_recorded():
    solution = BranchAndBoundSolver().solve(knapsack_problem())
    assert solution.solve_time_s > 0
    assert solution.nodes_explored >= 1
