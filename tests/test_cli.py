"""Tests for the experiment CLI."""

import pytest

from repro import cli
from repro.experiments.harness import ExperimentScale


def test_every_registered_experiment_has_description_and_runner():
    assert set(cli.EXPERIMENTS) >= {"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "milp", "reuse"}
    for name, (description, runner) in cli.EXPERIMENTS.items():
        assert isinstance(description, str) and description
        assert callable(runner)


def test_list_command(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    for name in cli.EXPERIMENTS:
        assert name in out


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        cli.build_parser().parse_args(["fig42"])


def test_scale_from_args_fast_and_custom():
    args = cli.build_parser().parse_args(["fig5", "--fast", "--workers", "8", "--seed", "3"])
    scale = cli.scale_from_args(args)
    assert scale == ExperimentScale(dataset_size=300, trace_duration=180.0, num_workers=8, seed=3)
    args = cli.build_parser().parse_args(
        ["fig5", "--dataset-size", "500", "--duration", "90", "--workers", "4"]
    )
    scale = cli.scale_from_args(args)
    assert scale.dataset_size == 500
    assert scale.trace_duration == 90.0
    assert scale.num_workers == 4


def test_main_runs_a_cheap_experiment(capsys, monkeypatch):
    calls = {}

    def fake_runner(scale):
        calls["scale"] = scale
        return "ok"

    monkeypatch.setitem(cli.EXPERIMENTS, "reuse", ("Reuse study", fake_runner))
    assert cli.main(["reuse", "--fast"]) == 0
    assert isinstance(calls["scale"], ExperimentScale)
    assert "reuse" in capsys.readouterr().out


def test_main_all_runs_every_runner(monkeypatch, capsys):
    ran = []
    for name in list(cli.EXPERIMENTS):
        monkeypatch.setitem(
            cli.EXPERIMENTS, name, (f"{name} stub", lambda scale, n=name: ran.append(n))
        )
    assert cli.main(["all", "--fast"]) == 0
    assert sorted(ran) == sorted(cli.EXPERIMENTS)
