"""Tests for the experiment CLI."""

import pytest

from repro import cli
from repro.experiments.harness import ExperimentScale


def test_every_registered_experiment_has_description_and_runner():
    assert set(cli.EXPERIMENTS) >= {
        "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "milp", "reuse",
    }
    for name, (description, runner) in cli.EXPERIMENTS.items():
        assert isinstance(description, str) and description
        assert callable(runner)


def test_list_command(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    for name in cli.EXPERIMENTS:
        assert name in out


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        cli.build_parser().parse_args(["fig42"])


def test_scale_from_args_fast_and_custom():
    args = cli.build_parser().parse_args(["fig5", "--fast", "--workers", "8", "--seed", "3"])
    scale = cli.scale_from_args(args)
    assert scale == ExperimentScale(dataset_size=300, trace_duration=180.0, num_workers=8, seed=3)
    args = cli.build_parser().parse_args(
        ["fig5", "--dataset-size", "500", "--duration", "90", "--workers", "4"]
    )
    scale = cli.scale_from_args(args)
    assert scale.dataset_size == 500
    assert scale.trace_duration == 90.0
    assert scale.num_workers == 4


def test_main_runs_a_cheap_experiment(capsys, monkeypatch):
    calls = {}

    def fake_runner(scale):
        calls["scale"] = scale
        return "ok"

    monkeypatch.setitem(cli.EXPERIMENTS, "reuse", ("Reuse study", fake_runner))
    assert cli.main(["reuse", "--fast"]) == 0
    assert isinstance(calls["scale"], ExperimentScale)
    assert "reuse" in capsys.readouterr().out


def test_main_all_runs_every_runner(monkeypatch, capsys):
    ran = []
    for name in list(cli.EXPERIMENTS):
        monkeypatch.setitem(
            cli.EXPERIMENTS, name, (f"{name} stub", lambda scale, n=name: ran.append(n))
        )
    assert cli.main(["all", "--fast"]) == 0
    assert sorted(ran) == sorted(cli.EXPERIMENTS)


# ------------------------------------------------------------------ grid runner
TINY_ARGS = ["--dataset-size", "60", "--duration", "10", "--workers", "2"]


def test_parse_grid_cross_product():
    scale = ExperimentScale(dataset_size=60, trace_duration=10.0, num_workers=2, seed=0)
    grid = cli.parse_grid("cascades=sdturbo,sdxs;seeds=0,1;qps=4,8;systems=diffserve", scale)
    assert len(grid) == 8
    assert {spec.scale.seed for spec in grid} == {0, 1}
    assert all(spec.systems == ("diffserve",) for spec in grid)


def test_parse_grid_rejects_unknown_keys_and_malformed_fields():
    scale = ExperimentScale(dataset_size=60, trace_duration=10.0, num_workers=2, seed=0)
    with pytest.raises(ValueError):
        cli.parse_grid("cascadez=sdturbo", scale)
    with pytest.raises(ValueError):
        cli.parse_grid("cascades", scale)


def test_run_command_executes_and_caches(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    argv = ["run", "--grid", "cascades=sdturbo;qps=4;systems=diffserve", "--jobs", "1"] + TINY_ARGS
    assert cli.main(argv + ["--json", str(tmp_path / "a.json")]) == 0
    out = capsys.readouterr().out
    assert "cells=1 ok=1 cached=0" in out

    assert cli.main(argv + ["--json", str(tmp_path / "b.json")]) == 0
    out = capsys.readouterr().out
    assert "cells=1 ok=0 cached=1" in out
    assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()


def test_run_command_reports_failed_cells_with_nonzero_exit(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    argv = ["run", "--grid", "cascades=nope;qps=4;systems=diffserve", "--jobs", "1"] + TINY_ARGS
    assert cli.main(argv) == 1
    captured = capsys.readouterr()
    assert "failed=1" in captured.out
    assert "nope" in captured.err


def test_run_command_rejects_bad_grid_spec(capsys):
    assert cli.main(["run", "--grid", "wat=1"]) == 2
    assert "unknown grid keys" in capsys.readouterr().err


# ------------------------------------------------------------- workload axis
def test_parse_grid_workloads_axis():
    scale = ExperimentScale(dataset_size=60, trace_duration=10.0, num_workers=2, seed=0)
    grid = cli.parse_grid("cascades=sdturbo;workloads=mmpp,diurnal;systems=diffserve", scale)
    assert len(grid) == 2
    assert [spec.trace.kind for spec in grid] == ["mmpp", "diurnal"]


def test_workload_flag_overrides_grid_key_and_carries_params():
    scale = ExperimentScale(dataset_size=60, trace_duration=10.0, num_workers=2, seed=0)
    grid = cli.parse_grid(
        "cascades=sdturbo;workloads=azure;systems=diffserve",
        scale,
        workloads="mmpp,flash-crowd",
        workload_params="burst_factor=6,dwell_burst=5",
    )
    assert [spec.trace.kind for spec in grid] == ["mmpp", "flash-crowd"]
    assert grid[0].trace.params_dict() == {"burst_factor": 6.0, "dwell_burst": 5.0}
    # The two cells hash differently (the workload is a real grid dimension).
    assert len({spec.content_hash for spec in grid}) == 2


def test_workloads_cross_with_qps():
    scale = ExperimentScale(dataset_size=60, trace_duration=10.0, num_workers=2, seed=0)
    grid = cli.parse_grid(
        "cascades=sdturbo;workloads=static,mmpp;qps=4,8;systems=diffserve", scale
    )
    assert len(grid) == 4
    assert {(s.trace.kind, s.trace.qps) for s in grid} == {
        ("static", 4.0), ("static", 8.0), ("mmpp", 4.0), ("mmpp", 8.0),
    }


def test_parse_workload_params_rejects_malformed_input():
    with pytest.raises(ValueError):
        cli.parse_workload_params("burst_factor")
    with pytest.raises(ValueError):
        cli.parse_workload_params("burst_factor=abc")
    assert cli.parse_workload_params(None) == {}
    assert cli.parse_workload_params("a=1, b=2.5") == {"a": 1.0, "b": 2.5}


def test_run_command_accepts_workload_flag(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    argv = [
        "run", "--grid", "cascades=sdturbo;systems=diffserve",
        "--workload", "flash-crowd", "--workload-params", "spike_factor=2",
    ] + TINY_ARGS
    assert cli.main(argv) == 0
    out = capsys.readouterr().out
    assert "flash-crowd" in out
    assert "cells=1 ok=1 cached=0" in out


def test_workload_params_matching_no_selected_workload_are_rejected():
    scale = ExperimentScale(dataset_size=60, trace_duration=10.0, num_workers=2, seed=0)
    with pytest.raises(ValueError, match="apply to none"):
        cli.parse_grid(
            "cascades=sdturbo;systems=diffserve",
            scale,
            workloads="diurnal",
            workload_params="burst_factor=6",
        )


def test_parse_workload_params_rejects_duplicate_keys():
    with pytest.raises(ValueError, match="duplicate workload param"):
        cli.parse_workload_params("burst_factor=2,burst_factor=9")


def test_parse_workload_params_accepts_json_object():
    assert cli.parse_workload_params('{"burst_factor": 6, "dwell_burst": 5}') == {
        "burst_factor": 6.0,
        "dwell_burst": 5.0,
    }


def test_parse_workload_params_rejects_malformed_json_with_one_line_error():
    with pytest.raises(ValueError, match="malformed JSON"):
        cli.parse_workload_params('{"burst_factor": }')
    with pytest.raises(ValueError, match="must be an object"):
        cli.parse_workload_params("[1, 2]")
    with pytest.raises(ValueError, match="'burst_factor' must be a number"):
        cli.parse_workload_params('{"burst_factor": "six"}')


def test_run_command_malformed_json_params_is_clean_cli_error(capsys):
    argv = ["run", "--workload", "mmpp", "--workload-params", '{"burst_factor": }']
    assert cli.main(argv) == 2
    captured = capsys.readouterr()
    assert captured.err.startswith("error:")
    assert "JSON" in captured.err
    assert "Traceback" not in captured.err


def test_run_command_out_of_range_param_value_names_the_key(capsys):
    # burst_fraction=2 passes key validation but fails the scenario's range
    # check; it must surface as a one-line parse error, not a traceback from
    # inside a grid cell.
    argv = ["run", "--workload", "mmpp", "--workload-params", "burst_fraction=2"]
    assert cli.main(argv) == 2
    captured = capsys.readouterr()
    assert captured.err.startswith("error:")
    assert "burst_fraction" in captured.err
    assert "Traceback" not in captured.err


# -------------------------------------------------------------- fleet flag
def test_parse_fleet_accepts_pairs_and_json():
    assert cli.parse_fleet(None) is None
    assert cli.parse_fleet("") is None
    assert cli.parse_fleet("a100=8,l4=16") == {"a100": 8, "l4": 16}
    assert cli.parse_fleet('{"a100": 8, "l4": 16}') == {"a100": 8, "l4": 16}


def test_parse_fleet_rejects_bad_input_with_one_line_errors():
    with pytest.raises(ValueError, match="expected class=count"):
        cli.parse_fleet("a100")
    with pytest.raises(ValueError, match="'a100': count must be a positive integer"):
        cli.parse_fleet("a100=eight")
    with pytest.raises(ValueError, match="'l4': count must be a positive integer"):
        cli.parse_fleet('{"l4": 2.5}')
    with pytest.raises(ValueError, match="duplicate fleet class 'a100'"):
        cli.parse_fleet("a100=2,a100=4")
    with pytest.raises(ValueError, match="unknown device class 'b200'"):
        cli.parse_fleet("b200=4")
    with pytest.raises(ValueError, match="malformed JSON for --fleet"):
        cli.parse_fleet('{"a100": }')
    with pytest.raises(ValueError, match="count must be >= 1"):
        cli.parse_fleet("a100=0")


def test_parse_grid_fleet_becomes_cached_dimension():
    scale = ExperimentScale(dataset_size=60, trace_duration=10.0, num_workers=2, seed=0)
    plain = cli.parse_grid("cascades=sdturbo;systems=diffserve", scale)
    typed = cli.parse_grid(
        "cascades=sdturbo;systems=diffserve", scale, fleet="l4=4,a100=2"
    )
    assert typed[0].fleet == (("a100", 2), ("l4", 4))  # canonical (sorted) order
    assert plain[0].fleet is None
    # The fleet is a real grid dimension: the cells hash differently and the
    # label names the fleet.
    assert plain[0].content_hash != typed[0].content_hash
    assert "a100x2+l4x4" in typed[0].label


def test_run_command_accepts_fleet_flag(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    argv = [
        "run", "--grid", "cascades=sdturbo;qps=4;systems=diffserve",
        "--fleet", "a100=1,l4=2",
    ] + TINY_ARGS
    assert cli.main(argv) == 0
    out = capsys.readouterr().out
    assert "a100x1+l4x2" in out
    assert "cells=1 ok=1 cached=0" in out


def test_run_command_bad_fleet_is_clean_cli_error(capsys):
    argv = ["run", "--grid", "cascades=sdturbo;systems=diffserve", "--fleet", "b200=4"]
    assert cli.main(argv) == 2
    captured = capsys.readouterr()
    assert captured.err.startswith("error:")
    assert "b200" in captured.err
    assert "Traceback" not in captured.err


def test_fleet_experiment_is_registered():
    assert "fleet" in cli.EXPERIMENTS
    description, runner = cli.EXPERIMENTS["fleet"]
    assert "fleet" in description.lower() or "Heterogeneous" in description
    assert callable(runner)


# ------------------------------------------------------------- replan flags
def test_parse_grid_replan_flags_become_cached_params():
    scale = ExperimentScale(dataset_size=60, trace_duration=10.0, num_workers=2, seed=0)
    plain = cli.parse_grid("cascades=sdturbo;systems=diffserve", scale)
    replanned = cli.parse_grid(
        "cascades=sdturbo;systems=diffserve",
        scale,
        replan_epoch=3.0,
        replan_policy="adaptive",
    )
    assert replanned[0].params_dict() == {
        "replan_epoch": 3.0,
        "replan_policy": "adaptive",
    }
    # The control plane is a real grid dimension: the cells hash differently.
    assert plain[0].content_hash != replanned[0].content_hash

    epoch_only = cli.parse_grid("cascades=sdturbo;systems=diffserve", scale, replan_epoch=2.0)
    assert epoch_only[0].params_dict() == {"replan_epoch": 2.0}


def test_replan_flags_cross_with_slo_sweep():
    scale = ExperimentScale(dataset_size=60, trace_duration=10.0, num_workers=2, seed=0)
    grid = cli.parse_grid(
        "cascades=sdturbo;systems=diffserve;slos=3,5",
        scale,
        replan_epoch=2.0,
        replan_policy="periodic",
    )
    assert len(grid) == 2
    for spec in grid:
        params = spec.params_dict()
        assert params["replan_epoch"] == 2.0
        assert params["replan_policy"] == "periodic"
    assert {spec.params_dict()["slo"] for spec in grid} == {3.0, 5.0}


# ------------------------------------------------------------ geo/shards flags
def test_parse_shards_int_auto_and_errors():
    assert cli.parse_shards("1") == 1
    assert cli.parse_shards(" 4 ") == 4
    assert 1 <= cli.parse_shards("auto") <= 8
    assert cli.parse_shards(None) == 1  # unset flag keeps the serial default
    for bad in ("0", "-2", "two", "1.5"):
        with pytest.raises(ValueError):
            cli.parse_shards(bad)


def test_parse_grid_geo_and_shards_flags():
    scale = ExperimentScale(dataset_size=60, trace_duration=10.0, num_workers=2, seed=0)
    grid = cli.parse_grid(
        "cascades=sdturbo;qps=4;systems=diffserve", scale, geo="us-eu", shards=2
    )
    assert len(grid) == 1
    assert grid[0].geo == "us-eu"
    assert grid[0].shards == 2
    plain = cli.parse_grid("cascades=sdturbo;qps=4;systems=diffserve", scale)
    assert plain[0].geo is None and plain[0].shards == 1
    assert grid[0].cache_key != plain[0].cache_key
    with pytest.raises(ValueError):
        cli.parse_grid("cascades=sdturbo;qps=4;systems=diffserve", scale, geo="atlantis")


def test_run_command_accepts_geo_and_shards(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    argv = [
        "run",
        "--grid", "cascades=sdturbo;qps=4;systems=diffserve",
        "--geo", "us-eu",
        "--shards", "2",
        "--jobs", "1",
    ] + TINY_ARGS
    assert cli.main(argv) == 0
    assert "cells=1 ok=1" in capsys.readouterr().out


def test_run_command_bad_geo_and_shards_are_clean_cli_errors(capsys):
    argv = ["run", "--grid", "cascades=sdturbo;qps=4;systems=diffserve"]
    assert cli.main(argv + ["--geo", "atlantis"]) == 2
    assert "geo" in capsys.readouterr().err.lower()
    assert cli.main(argv + ["--shards", "zero"]) == 2
    assert "--shards" in capsys.readouterr().err


def test_geo_experiment_is_registered():
    description, runner = cli.EXPERIMENTS["geo"]
    assert "topolog" in description.lower()
    assert callable(runner)
