"""Tests for difficulty model, image generation and dataset construction."""

import numpy as np
import pytest

from repro.models.dataset import QueryDataset, load_dataset, make_coco_like, make_diffusiondb_like
from repro.models.difficulty import COCO_DIFFICULTY, DifficultyModel
from repro.models.generation import FEATURE_DIM, GeneratedImage, ImageGenerator
from repro.models.scores import clip_score, pick_score, pick_score_difference
from repro.models.zoo import get_variant


# ----------------------------------------------------------------- difficulty
def test_difficulty_samples_in_unit_interval():
    rng = np.random.default_rng(0)
    samples = COCO_DIFFICULTY.sample(1000, rng)
    assert samples.min() >= 0 and samples.max() <= 1
    assert samples.mean() == pytest.approx(COCO_DIFFICULTY.mean, abs=0.05)


def test_difficulty_quantile_monotone():
    model = DifficultyModel()
    assert model.quantile(0.2) < model.quantile(0.5) < model.quantile(0.9)


def test_difficulty_invalid_params():
    with pytest.raises(ValueError):
        DifficultyModel(alpha=0.0)
    with pytest.raises(ValueError):
        COCO_DIFFICULTY.sample(-1, np.random.default_rng(0))


# ----------------------------------------------------------------- generation
def test_generation_is_deterministic_per_query_and_variant():
    gen = ImageGenerator(seed=1)
    light = get_variant("sd-turbo")
    a = gen.generate(5, 0.4, light)
    b = gen.generate(5, 0.4, light)
    assert a.quality == b.quality
    assert np.allclose(a.features, b.features)


def test_generation_differs_across_queries_and_variants():
    gen = ImageGenerator(seed=1)
    light, heavy = get_variant("sd-turbo"), get_variant("sd-v1.5")
    a = gen.generate(5, 0.4, light)
    b = gen.generate(6, 0.4, light)
    c = gen.generate(5, 0.4, heavy)
    assert not np.allclose(a.features, b.features)
    assert not np.allclose(a.features, c.features)


def test_quality_decreases_with_difficulty_on_average():
    gen = ImageGenerator(seed=0)
    light = get_variant("sd-turbo")
    easy = [gen.generate(i, 0.1, light).quality for i in range(200)]
    hard = [gen.generate(i + 1000, 0.9, light).quality for i in range(200)]
    assert np.mean(easy) > np.mean(hard) + 0.1


def test_heavy_model_more_robust_to_difficulty():
    gen = ImageGenerator(seed=0)
    light, heavy = get_variant("sd-turbo"), get_variant("sd-v1.5")
    hard_light = np.mean([gen.generate(i, 0.9, light).quality for i in range(200)])
    hard_heavy = np.mean([gen.generate(i, 0.9, heavy).quality for i in range(200)])
    assert hard_heavy > hard_light


def test_easy_query_fraction_in_paper_range():
    """20-40% of queries should be 'easy' (light quality >= heavy quality)."""
    gen = ImageGenerator(seed=0)
    dataset = make_coco_like(1500, seed=0)
    light, heavy = get_variant("sd-turbo"), get_variant("sd-v1.5")
    lq = np.array([gen.generate(i, dataset.difficulty(i), light).quality for i in range(1500)])
    hq = np.array([gen.generate(i, dataset.difficulty(i), heavy).quality for i in range(1500)])
    easy = float(np.mean(lq >= hq))
    assert 0.10 <= easy <= 0.45


def test_generated_image_validation():
    with pytest.raises(ValueError):
        GeneratedImage(query_id=0, variant_name="x", quality=1.5, features=np.zeros(4))
    with pytest.raises(ValueError):
        GeneratedImage(query_id=0, variant_name="x", quality=0.5, features=np.zeros((2, 2)))


def test_reuse_penalty_lowers_quality():
    gen = ImageGenerator(seed=0)
    light, heavy = get_variant("sdxs"), get_variant("sd-v1.5")
    base = gen.generate(3, 0.5, heavy)
    reused = gen.generate(3, 0.5, heavy, reuse_from=gen.generate(3, 0.5, light), reuse_penalty=0.1)
    assert reused.quality <= base.quality


def test_generate_batch_and_real_features():
    gen = ImageGenerator(seed=0)
    light = get_variant("sd-turbo")
    batch = gen.generate_batch([1, 2, 3], [0.2, 0.5, 0.8], light)
    assert len(batch) == 3
    real = gen.sample_real_features(50, np.random.default_rng(0))
    assert real.shape == (50, FEATURE_DIM)
    with pytest.raises(ValueError):
        gen.generate_batch([1, 2], [0.5], light)


def test_invalid_difficulty_rejected():
    gen = ImageGenerator(seed=0)
    with pytest.raises(ValueError):
        gen.generate(0, 1.5, get_variant("sd-turbo"))


# --------------------------------------------------------------------- scores
def test_pick_score_difference_cancels_prompt_offset(light_images, heavy_images):
    # Differences for the same prompt should correlate with quality difference.
    diffs = [pick_score_difference(l, h) for l, h in zip(light_images[:200], heavy_images[:200])]
    quality_diffs = [
        l.quality - h.quality for l, h in zip(light_images[:200], heavy_images[:200])
    ]
    corr = np.corrcoef(diffs, quality_diffs)[0, 1]
    assert corr > 0.5


def test_pick_score_raw_values_dominated_by_prompt_offset(light_images):
    # Across prompts, the quality signal is drowned by the per-prompt offset.
    scores = np.array([pick_score(img) for img in light_images])
    qualities = np.array([img.quality for img in light_images])
    corr = abs(np.corrcoef(scores, qualities)[0, 1])
    assert corr < 0.5


def test_pick_score_difference_requires_same_prompt(light_images, heavy_images):
    with pytest.raises(ValueError):
        pick_score_difference(light_images[0], heavy_images[1])


def test_clip_score_weakly_informative(light_images):
    scores = np.array([clip_score(img) for img in light_images])
    assert scores.std() < 0.2  # variants' CLIP scores are close together


# -------------------------------------------------------------------- dataset
def test_coco_dataset_shapes():
    ds = make_coco_like(200, seed=1)
    assert len(ds) == 200
    assert ds.real_features.shape == (200, FEATURE_DIM)
    assert ds.resolution == 512
    assert all(0 <= d <= 1 for d in ds.difficulties)


def test_diffusiondb_dataset_is_higher_resolution_and_harder():
    coco = make_coco_like(2000, seed=0)
    ddb = make_diffusiondb_like(2000, seed=0)
    assert ddb.resolution == 1024
    assert ddb.difficulties.mean() > coco.difficulties.mean()


def test_dataset_indexing_wraps_around():
    ds = make_coco_like(100, seed=0)
    assert ds.prompt(105) == ds.prompt(5)
    assert ds.difficulty(105) == ds.difficulty(5)


def test_dataset_subset():
    ds = make_coco_like(100, seed=0)
    sub = ds.subset(10)
    assert len(sub) == 10
    assert sub.prompts[0] == ds.prompts[0]
    with pytest.raises(ValueError):
        ds.subset(0)


def test_load_dataset_by_name():
    assert load_dataset("coco", n=60).name == "coco"
    assert load_dataset("diffusiondb", n=60).name == "diffusiondb"
    with pytest.raises(KeyError):
        load_dataset("imagenet")


def test_dataset_validation():
    with pytest.raises(ValueError):
        QueryDataset(
            name="bad",
            prompts=["a", "b"],
            difficulties=np.array([0.5]),
            real_features=np.zeros((2, 4)),
        )
    with pytest.raises(ValueError):
        QueryDataset(
            name="bad",
            prompts=["a"],
            difficulties=np.array([1.5]),
            real_features=np.zeros((1, 4)),
        )


def test_prompts_get_longer_with_difficulty():
    ds = make_coco_like(2000, seed=0)
    lengths = np.array([len(p) for p in ds.prompts])
    corr = np.corrcoef(lengths, ds.difficulties)[0, 1]
    assert corr > 0.2
