"""Integration tests: full serving simulations of DiffServe and the baselines."""

import numpy as np
import pytest

from repro.baselines import (
    build_clipper_system,
    build_diffserve_static_system,
    build_proteus_system,
)
from repro.baselines.registry import BASELINE_TABLE, baseline_table_rows, render_baseline_table
from repro.core.query import QueryStage
from repro.core.system import build_diffserve_system
from repro.traces.azure import azure_functions_like_rate
from repro.traces.base import ArrivalTrace
from repro.traces.synthetic import static_rate


@pytest.fixture(scope="module")
def short_trace():
    curve = azure_functions_like_rate(4, 24, duration=120, seed=0)
    return curve, ArrivalTrace.from_rate_curve(curve, np.random.default_rng(0))


@pytest.fixture(scope="module")
def diffserve_result(coco_dataset_module, trained_discriminator_module, short_trace):
    _, trace = short_trace
    system = build_diffserve_system(
        "sdturbo",
        num_workers=16,
        dataset=coco_dataset_module,
        discriminator=trained_discriminator_module,
        seed=0,
    )
    return system.run(trace)


# Re-expose session fixtures under module-friendly names.
@pytest.fixture(scope="module")
def coco_dataset_module(request):
    return request.getfixturevalue("coco_dataset")


@pytest.fixture(scope="module")
def trained_discriminator_module(request):
    return request.getfixturevalue("trained_discriminator")


def test_diffserve_serves_every_query(diffserve_result, short_trace):
    _, trace = short_trace
    assert diffserve_result.total_queries == len(trace)
    completed = len(diffserve_result.completed_records)
    assert completed + diffserve_result.dropped_count == len(trace)
    assert completed > 0.9 * len(trace)


def test_diffserve_keeps_slo_violations_low(diffserve_result):
    assert diffserve_result.slo_violation_ratio < 0.10


def test_diffserve_uses_both_models(diffserve_result):
    stages = {r.stage for r in diffserve_result.completed_records}
    assert QueryStage.LIGHT in stages and QueryStage.HEAVY in stages
    assert 0.05 < diffserve_result.deferral_rate < 0.95


def test_diffserve_latencies_bounded_by_slo_plus_margin(diffserve_result):
    stats = diffserve_result.latency_stats()
    assert stats.maximum <= diffserve_result.slo * 1.5
    assert stats.mean < diffserve_result.slo


def test_diffserve_controller_adapts_threshold(diffserve_result):
    _, thresholds = diffserve_result.threshold_timeseries()
    assert len(thresholds) > 5
    assert thresholds.max() - thresholds.min() > 0.1  # it actually moved


def test_diffserve_result_summary_and_timeseries(diffserve_result):
    summary = diffserve_result.summary()
    for key in ("fid", "slo_violation_ratio", "deferral_rate", "mean_latency"):
        assert key in summary
    centers, fid = diffserve_result.fid_timeseries(window=30.0)
    assert len(centers) == len(fid) > 0
    centers, viol = diffserve_result.violation_timeseries(window=30.0)
    assert np.all((viol >= 0) & (viol <= 1))
    centers, demand = diffserve_result.demand_timeseries(window=30.0)
    assert demand.max() > demand.min()


def test_simulation_is_reproducible(coco_dataset_module, trained_discriminator_module):
    curve = static_rate(10.0, 60.0)
    trace = ArrivalTrace.from_rate_curve(curve, np.random.default_rng(3))

    def run_once():
        system = build_diffserve_system(
            "sdturbo",
            num_workers=8,
            dataset=coco_dataset_module,
            discriminator=trained_discriminator_module,
            seed=5,
        )
        return system.run(trace)

    a, b = run_once(), run_once()
    assert a.fid() == pytest.approx(b.fid())
    assert a.slo_violation_ratio == pytest.approx(b.slo_violation_ratio)
    assert a.deferral_rate == pytest.approx(b.deferral_rate)


# -------------------------------------------------------------------- baselines
def test_clipper_light_never_defers(coco_dataset_module, short_trace):
    _, trace = short_trace
    system = build_clipper_system("sdturbo", "light", dataset=coco_dataset_module)
    result = system.run(trace)
    assert result.deferral_rate == 0.0
    assert result.slo_violation_ratio < 0.02
    assert all(r.model_used == "sd-turbo" for r in result.completed_records)


def test_clipper_heavy_overloads_at_peak(coco_dataset_module, short_trace):
    _, trace = short_trace
    system = build_clipper_system("sdturbo", "heavy", dataset=coco_dataset_module)
    result = system.run(trace)
    assert all(r.model_used == "sd-v1.5" for r in result.completed_records)
    assert result.slo_violation_ratio > 0.2


def test_clipper_quality_ordering(coco_dataset_module, short_trace):
    _, trace = short_trace
    light = build_clipper_system("sdturbo", "light", dataset=coco_dataset_module).run(trace)
    heavy = build_clipper_system("sdturbo", "heavy", dataset=coco_dataset_module).run(trace)
    assert heavy.fid() < light.fid()
    with pytest.raises(ValueError):
        build_clipper_system("sdturbo", "medium")


def test_proteus_uses_multiple_variants_query_agnostically(coco_dataset_module, short_trace):
    _, trace = short_trace
    system = build_proteus_system("sdturbo", dataset=coco_dataset_module)
    result = system.run(trace)
    used = {r.model_used for r in result.completed_records}
    assert len(used) >= 2  # light + a more accurate variant
    assert result.slo_violation_ratio < 0.15


def test_diffserve_static_is_query_aware_but_not_adaptive(
    coco_dataset_module, trained_discriminator_module, short_trace
):
    curve, trace = short_trace
    system = build_diffserve_static_system(
        "sdturbo",
        anticipated_peak_qps=0.8 * curve.peak,
        dataset=coco_dataset_module,
        discriminator=trained_discriminator_module,
    )
    result = system.run(trace)
    # Static: exactly one controller decision (no re-planning).
    assert len(result.control_history) == 1
    assert result.deferral_rate > 0.05


def test_diffserve_beats_baselines_on_quality(
    coco_dataset_module, trained_discriminator_module, short_trace, diffserve_result
):
    _, trace = short_trace
    light = build_clipper_system("sdturbo", "light", dataset=coco_dataset_module).run(trace)
    proteus = build_proteus_system("sdturbo", dataset=coco_dataset_module).run(trace)
    assert diffserve_result.fid() < light.fid()
    assert diffserve_result.fid() < proteus.fid() + 0.3


def test_baseline_registry_matches_table1():
    assert set(BASELINE_TABLE) == {
        "clipper-light",
        "clipper-heavy",
        "proteus",
        "diffserve-static",
        "diffserve",
    }
    rows = baseline_table_rows()
    as_dict = {name: (alloc, aware) for name, alloc, aware in rows}
    assert as_dict["Clipper-Light"] == ("Static", "No")
    assert as_dict["Proteus"] == ("Dynamic", "No")
    assert as_dict["DiffServe-Static"] == ("Static", "Yes")
    assert as_dict["DiffServe"] == ("Dynamic", "Yes")
    text = render_baseline_table()
    assert "Approach" in text and "DiffServe" in text
