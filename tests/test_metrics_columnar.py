"""Equivalence tests for the columnar/streaming metrics pipeline.

Every vectorized path (columnar ``summary()``, ``violation_timeseries``,
streaming ``windowed_fid``, moments-cached FID) is pinned against a
brute-force per-record reimplementation of the legacy computation on
randomized runs, to ~1e-9.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import Query, QueryRecord, QueryStage
from repro.core.results import ColumnStore, ResultCollector, SimulationResult
from repro.metrics.accumulators import GaussianStats, P2Quantile, StreamingMoments
from repro.metrics.fid import (
    RealMoments,
    fid_score,
    frechet_distance,
    frechet_from_moments,
    windowed_fid,
    windowed_fid_reference,
)
from repro.models.dataset import make_coco_like
from repro.models.generation import GeneratedImage

DIM = 8
SLO = 2.0
DURATION = 120.0


# --------------------------------------------------------------------------
# Synthetic runs
# --------------------------------------------------------------------------


def _random_records(seed: int, n: int = 400):
    """A randomized record list with drops, violations, and both stages."""
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n):
        arrival = float(rng.uniform(0.0, DURATION))
        query = Query(query_id=i, arrival_time=arrival, prompt="p", difficulty=0.5, slo=SLO)
        if rng.random() < 0.15:
            records.append(QueryRecord(query=query, stage=QueryStage.DROPPED))
            continue
        stage = QueryStage.HEAVY if rng.random() < 0.4 else QueryStage.LIGHT
        records.append(
            QueryRecord(
                query=query,
                stage=stage,
                completion_time=arrival + float(rng.exponential(1.2)),
                model_used="m",
                quality=float(rng.uniform(0.0, 1.0)),
                features=rng.normal(size=DIM),
                confidence=float(rng.uniform()) if rng.random() < 0.8 else None,
                deferred=stage == QueryStage.HEAVY,
            )
        )
    return records


def _result(seed: int, n: int = 400) -> SimulationResult:
    dataset = make_coco_like(200, seed=seed, feature_dim=DIM)
    return SimulationResult(
        records=_random_records(seed, n), dataset=dataset, slo=SLO, duration=DURATION
    )


# --------------------------------------------------------------------------
# Brute-force references (the legacy per-record computations, verbatim)
# --------------------------------------------------------------------------


def _ref_summary(result: SimulationResult) -> dict:
    records = result.records
    completed = [r for r in records if not r.dropped]
    dropped = sum(1 for r in records if r.dropped)
    violated = sum(1 for r in completed if r.slo_violated)
    latencies = np.array([r.latency for r in completed if r.latency is not None])
    feats = np.stack([r.features for r in completed if r.features is not None])
    qualities = [r.quality for r in completed if r.quality is not None]
    return {
        "total_queries": float(len(records)),
        "completed": float(len(completed)),
        "fid": fid_score(feats, result.dataset.real_features),
        "slo_violation_ratio": (violated + dropped) / len(records),
        "deferral_rate": sum(1 for r in completed if r.stage == QueryStage.HEAVY)
        / len(completed),
        "dropped": float(dropped),
        "mean_quality": float(np.mean(qualities)),
        "mean_latency": float(latencies.mean()),
        "p50_latency": float(np.percentile(latencies, 50)),
        "p99_latency": float(np.percentile(latencies, 99)),
        # Carried verbatim from the result, not derived from records: the
        # cost ledger's time-integrated total (A100-hours).
        "fleet_cost": result.fleet_cost,
    }


def _ref_violation_timeseries(result: SimulationResult, window: float):
    edges = np.arange(0.0, result.duration + window, window)
    centers = (edges[:-1] + edges[1:]) / 2.0
    ratios = np.zeros(len(centers))
    for i, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
        in_window = [r for r in result.records if lo <= r.query.arrival_time < hi]
        if not in_window:
            continue
        ratios[i] = sum(1 for r in in_window if r.slo_violated) / len(in_window)
    return centers, ratios


# --------------------------------------------------------------------------
# Columnar result equivalence
# --------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_columnar_summary_matches_brute_force(seed):
    result = _result(seed)
    summary = result.summary()
    reference = _ref_summary(result)
    assert set(summary) == set(reference)
    for key in reference:
        assert summary[key] == pytest.approx(reference[key], rel=1e-9, abs=1e-9), key


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("window", [7.5, 20.0, 60.0])
def test_columnar_violation_timeseries_matches_brute_force(seed, window):
    result = _result(seed)
    centers, ratios = result.violation_timeseries(window)
    ref_centers, ref_ratios = _ref_violation_timeseries(result, window)
    np.testing.assert_allclose(centers, ref_centers)
    np.testing.assert_allclose(ratios, ref_ratios, atol=1e-12)


def test_columnar_demand_timeseries_matches_histogram():
    result = _result(0)
    centers, demand = result.demand_timeseries(20.0)
    arrivals = np.array([r.query.arrival_time for r in result.records])
    edges = np.arange(0.0, result.duration + 20.0, 20.0)
    counts, _ = np.histogram(arrivals, bins=edges)
    np.testing.assert_allclose(demand, counts / 20.0)
    assert len(centers) == len(demand)


def test_columnar_latency_stats_match_per_record_scan():
    result = _result(1)
    stats = result.latency_stats()
    latencies = [r.latency for r in result.completed_records if r.latency is not None]
    assert stats.count == len(latencies)
    assert stats.mean == pytest.approx(np.mean(latencies), rel=1e-12)
    assert stats.p99 == pytest.approx(np.percentile(latencies, 99), rel=1e-12)
    assert stats.maximum == pytest.approx(np.max(latencies), rel=1e-12)


def test_column_store_from_records_handles_empty_and_all_dropped():
    dataset = make_coco_like(50, seed=0, feature_dim=DIM)
    empty = SimulationResult(records=[], dataset=dataset, slo=SLO, duration=10.0)
    assert empty.total_queries == 0
    assert empty.dropped_count == 0
    assert empty.slo_violation_ratio == 0.0
    assert np.isnan(empty.fid())
    all_dropped = SimulationResult(
        records=[
            QueryRecord(
                query=Query(query_id=i, arrival_time=1.0, prompt="p", difficulty=0.5, slo=SLO),
                stage=QueryStage.DROPPED,
            )
            for i in range(3)
        ],
        dataset=dataset,
        slo=SLO,
        duration=10.0,
    )
    assert all_dropped.slo_violation_ratio == 1.0
    assert all_dropped.deferral_rate == 0.0
    assert all_dropped.latency_stats().count == 0


# --------------------------------------------------------------------------
# Collector-driven runs
# --------------------------------------------------------------------------


def test_collector_driven_result_matches_brute_force():
    """Records produced through the collector's data path yield the same
    columnar metrics as the per-record reference computation."""
    dataset = make_coco_like(200, seed=3, feature_dim=DIM)
    records = _random_records(3)
    collector = ResultCollector(dataset)
    for r in records:
        if r.dropped:
            collector.drop(r.query)
        else:
            image = GeneratedImage(
                query_id=r.query.query_id,
                variant_name=r.model_used,
                quality=r.quality,
                features=r.features,
            )
            collector.complete(r.query, image, r.stage, r.confidence, r.deferred, r.completion_time)
    result = SimulationResult(
        records=collector.records, dataset=dataset, slo=SLO, duration=DURATION
    )
    # The lazily-built store is cached on first access.
    assert result.cols is result.cols
    assert isinstance(result.cols, ColumnStore)
    summary = result.summary()
    reference = _ref_summary(result)
    for key in reference:
        assert summary[key] == pytest.approx(reference[key], rel=1e-9, abs=1e-9), key


def test_collector_running_summary_tracks_final_summary():
    dataset = make_coco_like(200, seed=4, feature_dim=DIM)
    records = _random_records(4)
    collector = ResultCollector(dataset)
    for r in records:
        if r.dropped:
            collector.drop(r.query)
        else:
            image = GeneratedImage(
                query_id=r.query.query_id,
                variant_name=r.model_used,
                quality=r.quality,
                features=r.features,
            )
            collector.complete(r.query, image, r.stage, r.confidence, r.deferred, r.completion_time)
    live = collector.running_summary()
    final = SimulationResult(
        records=collector.records, dataset=dataset, slo=SLO, duration=DURATION
    ).summary()
    for key in ("total_queries", "completed", "dropped", "slo_violation_ratio", "deferral_rate"):
        assert live[key] == pytest.approx(final[key], rel=1e-12), key
    assert live["mean_latency"] == pytest.approx(final["mean_latency"], rel=1e-9)
    # Streaming sufficient stats vs. one-shot fit: same value up to fp noise.
    assert live["fid"] == pytest.approx(final["fid"], rel=1e-6, abs=1e-6)
    # P-squared p99 is an estimate, not exact — just sanity-bound it.
    assert live["p99_latency"] >= final["p50_latency"]


# --------------------------------------------------------------------------
# Streaming windowed FID
# --------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(4))
def test_streaming_windowed_fid_matches_reference(seed):
    rng = np.random.default_rng(seed)
    n = 600
    real = rng.normal(size=(400, DIM))
    times = np.sort(rng.uniform(0.0, 100.0, size=n))
    feats = rng.normal(size=(n, DIM)) + 0.3
    centers, values = windowed_fid(times, feats, real, window=10.0, horizon=100.0)
    ref_centers, ref_values = windowed_fid_reference(times, feats, real, window=10.0, horizon=100.0)
    np.testing.assert_allclose(centers, ref_centers)
    np.testing.assert_allclose(values, ref_values, rtol=1e-9, atol=1e-9)


def test_streaming_windowed_fid_nan_carry_matches_reference():
    rng = np.random.default_rng(7)
    real = rng.normal(size=(300, DIM))
    # All completions land in the middle windows: leading windows stay NaN,
    # trailing windows carry the last computed value.
    times = rng.uniform(40.0, 60.0, size=200)
    feats = rng.normal(size=(200, DIM))
    _, values = windowed_fid(times, feats, real, window=10.0, horizon=100.0)
    _, ref_values = windowed_fid_reference(times, feats, real, 10.0, 100.0)
    np.testing.assert_allclose(values, ref_values, rtol=1e-9, atol=1e-9, equal_nan=True)
    assert np.isnan(values[:4]).all()
    assert np.isfinite(values[-1])


def test_streaming_windowed_fid_accepts_unsorted_timestamps():
    rng = np.random.default_rng(11)
    real = rng.normal(size=(300, DIM))
    times = rng.uniform(0.0, 100.0, size=400)  # deliberately unsorted
    feats = rng.normal(size=(400, DIM))
    _, values = windowed_fid(times, feats, real, window=20.0, horizon=100.0)
    _, ref_values = windowed_fid_reference(times, feats, real, 20.0, 100.0)
    np.testing.assert_allclose(values, ref_values, rtol=1e-9, atol=1e-9)


def test_fid_timeseries_uses_cached_real_moments():
    result = _result(2)
    centers, values = result.fid_timeseries(window=20.0)
    completed = [r for r in result.completed_records if r.features is not None]
    times = np.array([r.completion_time for r in completed])
    feats = np.stack([r.features for r in completed])
    ref_centers, ref_values = windowed_fid_reference(
        times, feats, result.dataset.real_features, 20.0, result.duration
    )
    np.testing.assert_allclose(centers, ref_centers)
    np.testing.assert_allclose(values, ref_values, rtol=1e-9, atol=1e-9, equal_nan=True)


def test_frechet_from_moments_matches_sqrtm_path():
    rng = np.random.default_rng(5)
    for _ in range(5):
        a = rng.normal(size=(500, DIM))
        b = rng.normal(size=(500, DIM)) * 1.3 + 0.5
        moments = RealMoments.fit(b)
        mu, sigma = a.mean(axis=0), np.cov(a, rowvar=False)
        fast = frechet_from_moments(mu, sigma, moments)
        slow = frechet_distance(mu, sigma, moments.mu, moments.sigma)
        assert fast == pytest.approx(slow, rel=1e-9, abs=1e-9)


def test_fid_score_with_moments_matches_plain():
    rng = np.random.default_rng(6)
    gen = rng.normal(size=(400, DIM)) + 0.2
    real = rng.normal(size=(400, DIM))
    assert fid_score(gen, real_moments=RealMoments.fit(real)) == pytest.approx(
        fid_score(gen, real), rel=1e-9, abs=1e-9
    )


def test_dataset_real_moments_cached_and_correct():
    dataset = make_coco_like(150, seed=0, feature_dim=DIM)
    moments = dataset.real_moments
    assert moments is dataset.real_moments  # cached instance
    np.testing.assert_allclose(moments.mu, dataset.real_features.mean(axis=0))
    np.testing.assert_allclose(moments.sigma, np.cov(dataset.real_features, rowvar=False))
    np.testing.assert_allclose(moments.sqrt_sigma @ moments.sqrt_sigma, moments.sigma, atol=1e-10)
    # subset() must not inherit the parent's cached moments.
    sub = dataset.subset(50)
    np.testing.assert_allclose(sub.real_moments.mu, sub.real_features.mean(axis=0))


# --------------------------------------------------------------------------
# Accumulators
# --------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(3))
def test_gaussian_stats_matches_numpy(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(257, DIM))
    stats = GaussianStats.from_features(x)
    np.testing.assert_allclose(stats.mean, x.mean(axis=0), rtol=1e-12)
    np.testing.assert_allclose(stats.cov(), np.cov(x, rowvar=False), rtol=1e-9, atol=1e-12)


def test_gaussian_stats_add_matches_add_batch():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(40, DIM))
    one_by_one = GaussianStats(DIM)
    for row in x:
        one_by_one.add(row)
    batched = GaussianStats.from_features(x)
    assert one_by_one.count == batched.count
    np.testing.assert_allclose(one_by_one.sum, batched.sum, rtol=1e-12)
    np.testing.assert_allclose(one_by_one.outer, batched.outer, rtol=1e-9)


@given(
    sizes=st.tuples(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=30, deadline=None)
def test_gaussian_stats_merge_is_associative(sizes, seed):
    rng = np.random.default_rng(seed)
    a, b, c = (GaussianStats.from_features(rng.normal(size=(n, 4))) for n in sizes)
    left = (a.merge(b)).merge(c)
    right = a.merge(b.merge(c))
    assert left.count == right.count == sum(sizes)
    np.testing.assert_allclose(left.sum, right.sum, rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(left.outer, right.outer, rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(left.cov(), right.cov(), rtol=1e-9, atol=1e-12)


def test_gaussian_stats_merge_equals_concatenation():
    rng = np.random.default_rng(1)
    x, y = rng.normal(size=(30, DIM)), rng.normal(size=(50, DIM))
    merged = GaussianStats.from_features(x).merge(GaussianStats.from_features(y))
    whole = GaussianStats.from_features(np.vstack([x, y]))
    np.testing.assert_allclose(merged.mean, whole.mean, rtol=1e-12)
    np.testing.assert_allclose(merged.cov(), whole.cov(), rtol=1e-9, atol=1e-12)


def test_gaussian_stats_validation():
    with pytest.raises(ValueError):
        GaussianStats(0)
    with pytest.raises(ValueError):
        GaussianStats(2).merge(GaussianStats(3))
    with pytest.raises(ValueError):
        GaussianStats(2).cov()  # not enough samples


@given(st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=200))
@settings(max_examples=50, deadline=None)
def test_streaming_moments_match_numpy(values):
    moments = StreamingMoments()
    for v in values:
        moments.add(v)
    assert moments.count == len(values)
    if values:
        assert moments.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert moments.minimum == min(values)
        assert moments.maximum == max(values)
    if len(values) >= 2:
        assert moments.variance == pytest.approx(np.var(values, ddof=1), rel=1e-6, abs=1e-5)


@given(
    st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=60),
    st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=60),
)
@settings(max_examples=50, deadline=None)
def test_streaming_moments_merge_is_exact(xs, ys):
    left, right = StreamingMoments(), StreamingMoments()
    left.add_batch(xs)
    right.add_batch(ys)
    merged = left.merge(right)
    whole = StreamingMoments()
    whole.add_batch(xs + ys)
    assert merged.count == whole.count
    assert merged.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-9)
    if merged.count >= 2:
        assert merged.variance == pytest.approx(whole.variance, rel=1e-6, abs=1e-9)


def test_p2_quantile_approximates_true_percentile():
    rng = np.random.default_rng(0)
    values = rng.exponential(1.0, size=20_000)
    p50, p99 = P2Quantile(0.5), P2Quantile(0.99)
    for v in values:
        p50.add(v)
        p99.add(v)
    assert p50.value == pytest.approx(np.percentile(values, 50), rel=0.05)
    assert p99.value == pytest.approx(np.percentile(values, 99), rel=0.10)


def test_p2_quantile_exact_for_few_samples():
    q = P2Quantile(0.5)
    assert np.isnan(q.value)
    for v in (5.0, 1.0, 3.0):
        q.add(v)
    assert q.value == 3.0
    with pytest.raises(ValueError):
        P2Quantile(0.0)
