"""Reload-aware MILP planning, residency plans, and the control-plane wiring.

Covers the planner half of the multi-resource worker model: reload variables
in the fraction MILP, the state-dependent reload cost model, co-placement
residency pinning (plus carry-forward repair across fleet drift), warm-start
incumbents extended with reload variables, and the Controller/Replanner
surfaces that move residency from plans onto workers.
"""

import pytest

from repro.core.allocator import AllocationPlan, ControlContext
from repro.core.config import ResourceConfig, fleet_from_counts
from repro.experiments.contention import ContentionArm, ContentionResult


def _ctx(allocator, *, fleet=None, num_workers=4, resources=None, current_plan=None, demand=2.0):
    return ControlContext(
        demand=demand,
        slo=5.0,
        fleet=fleet,
        num_workers=None if fleet is not None else num_workers,
        current_plan=current_plan,
        resources=resources,
    )


def _contended():
    """Footprints that cannot co-reside in 80 GB (no co-placement)."""
    return ResourceConfig.from_weights({"sd-turbo": 30.0, "sd-v1.5": 60.0})


# ------------------------------------------------------------- reload model
def test_reload_model_none_without_resources_or_previous_plan(allocator):
    assert allocator._reload_model(_ctx(allocator)) is None
    # Resources attached but no previous plan: nothing to reload from.
    assert allocator._reload_model(_ctx(allocator, resources=_contended())) is None
    # Reload-oblivious config: the planner must ignore the resource model.
    prev = AllocationPlan(num_light=3, num_heavy=1, threshold=0.5, heavy_fraction=0.2, light_batch=1, heavy_batch=1)
    ctx = _ctx(
        allocator,
        resources=ResourceConfig.from_weights(
            {"sd-turbo": 30.0, "sd-v1.5": 60.0}, reload_aware=False
        ),
        current_plan=prev,
    )
    assert allocator._reload_model(ctx) is None


def test_reload_model_none_when_every_class_coplaced(allocator):
    # Catalog footprints (5 + 8 GB) co-fit on a100: reloads are free
    # everywhere, so the model collapses to None and the MILP is unchanged.
    prev = AllocationPlan(num_light=3, num_heavy=1, threshold=0.5, heavy_fraction=0.2, light_batch=1, heavy_batch=1)
    ctx = _ctx(allocator, resources=ResourceConfig.default(), current_plan=prev)
    assert allocator._reload_model(ctx) is None


def test_reload_model_costs_follow_transfer_bandwidth(allocator):
    prev = AllocationPlan(num_light=3, num_heavy=1, threshold=0.5, heavy_fraction=0.2, light_batch=1, heavy_batch=1)
    ctx = _ctx(allocator, resources=_contended(), current_plan=prev)
    reload = allocator._reload_model(ctx)
    assert reload is not None
    light_cost, heavy_cost = reload["costs"]["a100"]
    assert light_cost == pytest.approx(30.0 / 16.0)
    assert heavy_cost == pytest.approx(60.0 / 16.0)
    assert reload["prev_light"] == {"a100": 3}
    assert reload["prev_heavy"] == {"a100": 1}


def test_build_problem_adds_reload_variables_only_when_contended(allocator):
    prev = AllocationPlan(num_light=3, num_heavy=1, threshold=0.5, heavy_fraction=0.2, light_batch=1, heavy_batch=1)
    contended = allocator.build_problem(
        _ctx(allocator, resources=_contended(), current_plan=prev), 1, 1, 2.0
    )
    assert "r1" in contended.variables and "r2" in contended.variables

    cofit = allocator.build_problem(
        _ctx(allocator, resources=ResourceConfig.default(), current_plan=prev), 1, 1, 2.0
    )
    assert "r1" not in cofit.variables and "r2" not in cofit.variables

    legacy = allocator.build_problem(_ctx(allocator), 1, 1, 2.0)
    assert "r1" not in legacy.variables


def test_reload_penalty_steers_plans_toward_fewer_flips(allocator):
    # Previous plan: all four workers light.  A reload-aware re-solve at
    # demand the light pool can still carry must prefer keeping the split
    # (flipping to heavy would pay 3.75 s of transfer in the objective).
    prev = AllocationPlan(num_light=4, num_heavy=0, threshold=0.0, heavy_fraction=0.0, light_batch=1, heavy_batch=1)
    ctx = _ctx(allocator, resources=_contended(), current_plan=prev, demand=1.0)
    plan = allocator.plan(ctx)
    oblivious = allocator.plan(_ctx(allocator, demand=1.0))
    assert plan.feasible
    # The aware plan never flips more workers to heavy than the oblivious
    # solve of the same context (the penalty only discourages churn).
    assert plan.num_heavy <= oblivious.num_heavy


def test_fill_reload_vars_completes_warm_incumbent(allocator):
    prev = AllocationPlan(num_light=3, num_heavy=1, threshold=0.5, heavy_fraction=0.2, light_batch=1, heavy_batch=1)
    ctx = _ctx(allocator, resources=_contended(), current_plan=prev)
    assignment = allocator._fill_reload_vars({"x1": 2.0, "x2": 2.0, "f": 0.2}, ctx)
    # x2 grew 1 -> 2: one heavy reload; x1 shrank: no light reload.
    assert assignment["r2"] == pytest.approx(1.0)
    assert "r1" not in assignment or assignment["r1"] == pytest.approx(0.0)
    # Without a reload model the assignment passes through untouched.
    plain = allocator._fill_reload_vars({"x1": 2.0}, _ctx(allocator))
    assert plain == {"x1": 2.0}


# --------------------------------------------------------------- residency
def test_plan_residency_pins_coplaced_classes(allocator):
    ctx = _ctx(allocator, resources=ResourceConfig.default())
    residency = allocator._plan_residency(ctx)
    assert residency == {"a100": ("sd-turbo", "sd-v1.5")}
    assert allocator._plan_residency(_ctx(allocator)) is None
    oblivious = ResourceConfig.default(reload_aware=False)
    assert allocator._plan_residency(_ctx(allocator, resources=oblivious)) is None


def test_plan_residency_carries_previous_pins_across_fleet_drift(allocator):
    # Previous plan pinned the light weights on l4; after drift the l4 class
    # must keep pins that still fit while a vanished class drops out.
    resources = ResourceConfig.from_weights({"sd-turbo": 10.0, "sd-v1.5": 20.0})
    prev = AllocationPlan(num_light=3, num_heavy=1, threshold=0.5, heavy_fraction=0.2, light_batch=1, heavy_batch=1)
    prev.residency = {"l4": ("sd-turbo",), "t4": ("sd-turbo",)}
    fleet = fleet_from_counts({"a100": 2, "l4": 3})
    ctx = _ctx(allocator, fleet=fleet, resources=resources, current_plan=prev)
    residency = allocator._plan_residency(ctx)
    assert residency["a100"] == ("sd-turbo", "sd-v1.5")  # co-placed: pinned
    assert residency["l4"] == ("sd-turbo",)  # carried forward
    assert "t4" not in residency  # drifted out of the fleet


def test_plan_residency_drops_pins_that_no_longer_fit(allocator):
    resources = ResourceConfig.from_weights({"sd-turbo": 30.0, "sd-v1.5": 60.0})
    prev = AllocationPlan(num_light=3, num_heavy=1, threshold=0.5, heavy_fraction=0.2, light_batch=1, heavy_batch=1)
    prev.residency = {"a100": ("sd-v1.5", "sd-turbo")}
    ctx = _ctx(allocator, resources=resources, current_plan=prev)
    residency = allocator._plan_residency(ctx)
    # 60 + 30 GB no longer co-fit: only the first still-fitting pin survives.
    assert residency["a100"] == ("sd-v1.5",)


def test_solved_plans_carry_residency(allocator):
    plan = allocator.plan(_ctx(allocator, resources=ResourceConfig.default()))
    assert plan.residency == {"a100": ("sd-turbo", "sd-v1.5")}
    legacy = allocator.plan(_ctx(allocator))
    assert legacy.residency is None


# ------------------------------------------------------------ control plane
def test_controller_applies_residency_to_workers(cascade1):
    from repro.core.system import build_diffserve_system

    system = build_diffserve_system(
        "sdturbo",
        num_workers=4,
        dataset_size=60,
        seed=0,
        resources=ResourceConfig.default(),
    )
    runtime = system.prepare()
    runtime.sim.run(until=1.0)  # plan zero applied + prefetches settled
    for worker in runtime.controller.workers:
        assert worker.resources is not None
        assert worker.resources.residency.pinned == {"sd-turbo", "sd-v1.5"}
        assert worker.resources.ready("sd-turbo")
        assert worker.resources.ready("sd-v1.5")


def test_replanner_snapshots_record_residency_token():
    from repro.core.replanner import ReplanController

    plan = AllocationPlan(num_light=3, num_heavy=1, threshold=0.5, heavy_fraction=0.2, light_batch=1, heavy_batch=1)
    plan.residency = {"a100": ("sd-turbo", "sd-v1.5"), "l4": ()}
    token = ReplanController._residency_token(plan)
    assert token == "a100:sd-turbo+sd-v1.5"
    assert ReplanController._residency_token(None) == ""
    bare = AllocationPlan(num_light=3, num_heavy=1, threshold=0.5, heavy_fraction=0.2, light_batch=1, heavy_batch=1)
    assert ReplanController._residency_token(bare) == ""


# ------------------------------------------------------- contention verdicts
def _arm(scenario, name, violation, p99):
    return ContentionArm(
        scenario=scenario,
        name=name,
        resources=None,
        summary={"slo_violation_ratio": violation, "p99_latency": p99},
    )


def test_contention_domination_and_neutrality_logic():
    result = ContentionResult(qps=10.0)
    result.arms = {
        "cofit": {
            "aware": _arm("cofit", "aware", 0.05, 4.0),
            "oblivious": _arm("cofit", "oblivious", 0.05, 4.0),
        },
        "contended": {
            "aware": _arm("contended", "aware", 0.02, 3.9),
            "oblivious": _arm("contended", "oblivious", 0.06, 4.8),
        },
    }
    assert result.reload_aware_dominates()
    assert result.coplacement_neutralizes()
    # Losing either objective breaks domination.
    result.arms["contended"]["aware"].summary["p99_latency"] = 5.0
    assert not result.reload_aware_dominates()
