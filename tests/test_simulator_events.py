"""Tests for the event queue."""

import pytest

from repro.simulator.events import Event, EventQueue


def test_push_and_pop_in_time_order():
    q = EventQueue()
    fired = []
    q.push(2.0, lambda: fired.append("b"))
    q.push(1.0, lambda: fired.append("a"))
    q.push(3.0, lambda: fired.append("c"))
    while q:
        q.pop().fire()
    assert fired == ["a", "b", "c"]


def test_ties_broken_by_priority_then_insertion_order():
    q = EventQueue()
    fired = []
    q.push(1.0, lambda: fired.append("second"), priority=1)
    q.push(1.0, lambda: fired.append("first"), priority=0)
    q.push(1.0, lambda: fired.append("third"), priority=1)
    while q:
        q.pop().fire()
    assert fired == ["first", "second", "third"]


def test_len_counts_live_events():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    q.cancel(e1)
    assert len(q) == 1


def test_cancelled_events_are_skipped():
    q = EventQueue()
    fired = []
    e = q.push(1.0, lambda: fired.append("cancelled"))
    q.push(2.0, lambda: fired.append("kept"))
    q.cancel(e)
    while q:
        q.pop().fire()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.cancel(e)
    q.cancel(e)
    assert len(q) == 0


def test_pop_empty_raises():
    q = EventQueue()
    with pytest.raises(IndexError):
        q.pop()


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    q.cancel(e)
    assert q.peek_time() == 5.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_negative_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push(-1.0, lambda: None)


def test_clear_removes_everything():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.peek_time() is None


def test_event_fire_returns_callback_value():
    event = Event(time=1.0, seq=0, callback=lambda: 42)
    assert event.fire() == 42


def test_cancelled_event_fire_is_noop():
    event = Event(time=1.0, seq=0, callback=lambda: 42)
    event.cancel()
    assert event.fire() is None
