"""Tests for the event queue."""

import pytest

from repro.simulator.events import Event, EventQueue


def test_push_and_pop_in_time_order():
    q = EventQueue()
    fired = []
    q.push(2.0, lambda: fired.append("b"))
    q.push(1.0, lambda: fired.append("a"))
    q.push(3.0, lambda: fired.append("c"))
    while q:
        q.pop().fire()
    assert fired == ["a", "b", "c"]


def test_ties_broken_by_priority_then_insertion_order():
    q = EventQueue()
    fired = []
    q.push(1.0, lambda: fired.append("second"), priority=1)
    q.push(1.0, lambda: fired.append("first"), priority=0)
    q.push(1.0, lambda: fired.append("third"), priority=1)
    while q:
        q.pop().fire()
    assert fired == ["first", "second", "third"]


def test_len_counts_live_events():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    q.cancel(e1)
    assert len(q) == 1


def test_cancelled_events_are_skipped():
    q = EventQueue()
    fired = []
    e = q.push(1.0, lambda: fired.append("cancelled"))
    q.push(2.0, lambda: fired.append("kept"))
    q.cancel(e)
    while q:
        q.pop().fire()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.cancel(e)
    q.cancel(e)
    assert len(q) == 0


def test_pop_empty_raises():
    q = EventQueue()
    with pytest.raises(IndexError):
        q.pop()


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    q.cancel(e)
    assert q.peek_time() == 5.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_negative_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push(-1.0, lambda: None)


def test_clear_removes_everything():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.peek_time() is None


def test_event_fire_returns_callback_value():
    event = Event(time=1.0, seq=0, callback=lambda: 42)
    assert event.fire() == 42


def test_cancelled_event_fire_is_noop():
    event = Event(time=1.0, seq=0, callback=lambda: 42)
    event.cancel()
    assert event.fire() is None


def test_events_and_queue_are_slotted():
    # Events are the hottest allocation in the simulator; the slot layout is
    # load-bearing for long bursty traces.
    event = Event(time=1.0, seq=0)
    assert not hasattr(event, "__dict__")
    with pytest.raises(AttributeError):
        event.unexpected_attribute = 1


def test_cancel_heavy_heap_is_compacted():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(1000)]
    for event in events[:900]:
        q.cancel(event)
    # Cancelled entries outnumber live ones, so the heap must have been
    # rebuilt with only (close to) the live events.
    assert len(q) == 100
    assert len(q._heap) <= 2 * len(q)


def test_compaction_preserves_pop_order_and_counts():
    q = EventQueue()
    keep, cancelled = [], []
    for i in range(500):
        event = q.push(float(i % 97), lambda i=i: i, priority=i % 3)
        (keep if i % 5 == 0 else cancelled).append(event)
    for event in cancelled:
        q.cancel(event)
    fired = []
    while q:
        event = q.pop()
        fired.append((event.time, event.priority, event.seq))
    assert len(fired) == len(keep)
    assert fired == sorted(fired)


def test_small_heaps_are_not_compacted():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(10)]
    for event in events[:9]:
        q.cancel(event)
    # Below the compaction threshold the dead entries stay until popped.
    assert len(q._heap) == 10
    assert len(q) == 1
    assert q.pop().time == 9.0


def test_compaction_keeps_cancel_idempotent():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(200)]
    for event in events[:150]:
        q.cancel(event)
    for event in events[:150]:
        q.cancel(event)  # second cancel of compacted-away events is a no-op
    assert len(q) == 50
    times = [q.pop().time for _ in range(len(q))]
    assert times == [float(i) for i in range(150, 200)]


# ---------------------------------------------------------------------------
# Pickle / shard-migration support (PR 6).  The compaction counter is
# process-local bookkeeping: a pickled queue must ship compacted with the
# counter re-derived on restore, and a drifted counter must fail the export.
# ---------------------------------------------------------------------------
import pickle


def _noop():  # module-level so the callbacks pickle
    return None


def _marker():
    return "fired"


def test_pickle_roundtrip_drops_cancelled_and_rederives_counter():
    q = EventQueue()
    kept = [q.push(float(t), _marker, name=f"k{t}") for t in (3, 1, 2)]
    doomed = [q.push(0.5, _noop), q.push(1.5, _noop)]
    for event in doomed:
        q.cancel(event)

    restored = pickle.loads(pickle.dumps(q))
    assert len(restored) == len(q) == 3
    # Only live entries crossed the boundary.
    assert all(not event.cancelled for event in restored._heap)
    assert len(restored._heap) == 3
    # Pop order (time, priority, seq) is preserved exactly.
    assert [event.time for event in (restored.pop(), restored.pop(), restored.pop())] == [
        1.0,
        2.0,
        3.0,
    ]
    # The counter resumes past the highest surviving seq: new pushes keep the
    # total order monotonic.
    top = pickle.loads(pickle.dumps(q))
    fresh = top.push(9.0, _noop)
    assert fresh.seq > max(event.seq for event in kept)


def test_restored_queue_still_compacts():
    q = EventQueue()
    events = [q.push(float(t), _noop) for t in range(200)]
    restored = pickle.loads(pickle.dumps(q))
    restored_events = sorted(restored._heap)
    for event in restored_events[:150]:
        restored.cancel(event)
    # The restored queue must keep compacting: without it the heap would hold
    # all 200 entries; with it the dead never outnumber the live.
    assert len(restored) == 50
    assert len(restored._heap) < 200
    assert len(restored._heap) - len(restored) <= len(restored)
    assert len(events) == 200  # originals untouched


def test_pickling_a_drifted_queue_raises():
    q = EventQueue()
    q.push(1.0, _noop)
    q.push(2.0, _noop)
    q._live = 7  # simulate corruption
    with pytest.raises(RuntimeError, match="live-counter drift"):
        pickle.dumps(q)


def test_clear_resets_tombstone_and_free_list_state():
    """``clear()`` must reset every piece of compaction/recycling state.

    Regression edge: a queue cleared while holding tombstones (dead counter
    > 0) or parked free-list wrappers used to be able to carry that state
    into its next life — which the pickling drift check would then flag as
    corruption.  After ``clear()`` the queue must be indistinguishable from
    a fresh one.
    """
    q = EventQueue()
    events = [q.push(float(t), _noop) for t in range(10)]
    for event in events[:5]:
        q.cancel(event)
    assert q._dead == 5  # below the compaction floor, so tombstones remain
    q.recycle(events[6])  # park a wrapper on the free list as well
    assert q._free

    q.clear()
    assert len(q) == 0
    assert q._heap == []
    assert q._dead == 0
    assert q._free == []

    # A cleared queue behaves exactly like a fresh one: the live counter is
    # consistent (no drift on export) and recycled state never leaks back.
    q.push(1.0, _noop)
    restored = pickle.loads(pickle.dumps(q))
    assert len(restored) == 1
    assert restored.pop().time == 1.0
