"""Tests for the multi-resource worker model primitives (core/resources.py).

Covers the processor-shared :class:`BandwidthChannel`, the LRU
:class:`ResidencySet`, the :class:`ResourceConfig` catalog layer, and the
property-based resource-conservation invariants the ROADMAP promises:

* the sum of active transfer shares never exceeds the channel capacity, at
  every event boundary;
* resident footprints never exceed device memory while ``overcommits == 0``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import DEVICE_CLASSES, ResourceConfig, fleet_from_counts
from repro.core.resources import BandwidthChannel, ResidencySet, WorkerResources
from repro.models.zoo import MODEL_FOOTPRINTS, get_cascade, variant_footprint
from repro.simulator.simulation import Simulator

_SETTINGS = dict(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------- bandwidth channel
def test_channel_single_transfer_runs_at_full_capacity():
    sim = Simulator(seed=0)
    channel = BandwidthChannel(sim, capacity_gbps=16.0)
    done = []
    channel.submit(8.0, lambda: done.append(sim.now))
    assert channel.share_gbps() == 16.0
    sim.run(until=10.0)
    assert done == [pytest.approx(0.5)]
    assert channel.transferred_gb == pytest.approx(8.0)
    assert channel.completed_transfers == 1


def test_channel_concurrent_transfers_share_proportionally():
    sim = Simulator(seed=0)
    channel = BandwidthChannel(sim, capacity_gbps=10.0)
    done = {}
    channel.submit(10.0, lambda: done.setdefault("a", sim.now), name="a")
    channel.submit(10.0, lambda: done.setdefault("b", sim.now), name="b")
    # Two equal transfers at 5 GB/s each: both finish at t=2, not t=1.
    assert channel.share_gbps() == pytest.approx(5.0)
    assert channel.total_rate_gbps() == pytest.approx(10.0)
    sim.run(until=10.0)
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(2.0)


def test_channel_late_joiner_slows_existing_transfer():
    sim = Simulator(seed=0)
    channel = BandwidthChannel(sim, capacity_gbps=10.0)
    done = {}
    channel.submit(10.0, lambda: done.setdefault("first", sim.now), name="first")
    sim.schedule(0.5, lambda: channel.submit(5.0, lambda: done.setdefault("late", sim.now)))
    sim.run(until=10.0)
    # First: 5 GB alone by t=0.5, then shares 5 GB/s -> +1.0s. Late joiner
    # finishes at the same instant (both have 5 GB left at t=0.5).
    assert done["first"] == pytest.approx(1.5)
    assert done["late"] == pytest.approx(1.5)


def test_channel_zero_size_transfer_completes_synchronously():
    sim = Simulator(seed=0)
    channel = BandwidthChannel(sim, capacity_gbps=1.0)
    done = []
    transfer = channel.submit(0.0, lambda: done.append(True))
    assert transfer.done and done == [True]
    assert channel.active_count == 0


def test_channel_cancel_aborts_without_callback():
    sim = Simulator(seed=0)
    channel = BandwidthChannel(sim, capacity_gbps=4.0)
    done = []
    victim = channel.submit(8.0, lambda: done.append("victim"))
    survivor = channel.submit(8.0, lambda: done.append("survivor"))
    channel.cancel(victim)
    sim.run(until=10.0)
    assert done == ["survivor"]
    # Survivor ran alone after the cancel: 8 GB at 2 GB/s shared for 0 time.
    assert survivor.done and not victim.done and victim.cancelled


def test_channel_rejects_nonpositive_capacity_and_negative_size():
    sim = Simulator(seed=0)
    with pytest.raises(ValueError):
        BandwidthChannel(sim, capacity_gbps=0.0)
    channel = BandwidthChannel(sim, capacity_gbps=1.0)
    with pytest.raises(ValueError):
        channel.submit(-1.0)


@given(
    sizes=st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=12),
    starts=st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=12),
    capacity=st.floats(min_value=0.5, max_value=64.0),
)
@settings(**_SETTINGS)
def test_channel_conserves_bandwidth_at_every_event(sizes, starts, capacity):
    """Property: shares sum to exactly capacity whenever the link is busy.

    Transfers are injected at arbitrary times; after every simulator event
    the aggregate rate equals the capacity (busy) or zero (idle), and all
    transfers eventually complete with the full byte count accounted.
    """
    sim = Simulator(seed=0)
    channel = BandwidthChannel(sim, capacity_gbps=capacity)
    pairs = list(zip(sizes, starts))
    for size, start in pairs:
        sim.schedule_at(start, lambda s=size: channel.submit(s))
    while sim.events:
        sim.advance(max_events=1)
        total = channel.total_rate_gbps()
        assert total <= capacity + 1e-9
        assert total == pytest.approx(capacity) or channel.active_count == 0
    assert channel.completed_transfers == len(pairs)
    assert channel.transferred_gb == pytest.approx(sum(size for size, _ in pairs))


# --------------------------------------------------------------- residency set
def test_residency_admit_touch_and_lru_eviction():
    rs = ResidencySet(capacity_gb=20.0)
    rs.admit("a", 8.0)
    rs.admit("b", 8.0)
    rs.touch("a")  # b is now LRU
    evicted = rs.admit("c", 8.0)
    assert evicted == ["b"]
    assert rs.resident_names() == ["a", "c"]
    assert rs.occupied_gb == pytest.approx(16.0)
    assert rs.evictions == 1 and rs.overcommits == 0


def test_residency_pinned_variants_survive_unpinned_eviction():
    rs = ResidencySet(capacity_gb=20.0)
    rs.admit("pinned", 8.0)
    rs.admit("lru", 8.0)
    rs.pin(["pinned"])
    rs.touch("lru")  # pinned is LRU, but protected from the first pass
    evicted = rs.admit("new", 8.0)
    assert evicted == ["lru"]
    assert rs.contains("pinned")


def test_residency_overcommits_instead_of_crashing():
    rs = ResidencySet(capacity_gb=10.0)
    rs.admit("running", 6.0)
    evicted = rs.admit("incoming", 8.0, active=["running"])
    assert evicted == []
    assert rs.overcommits == 1
    assert rs.occupied_gb == pytest.approx(14.0)


def test_residency_rejects_bad_inputs():
    with pytest.raises(ValueError):
        ResidencySet(capacity_gb=0.0)
    rs = ResidencySet(capacity_gb=1.0)
    with pytest.raises(ValueError):
        rs.admit("x", 0.0)


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["admit", "touch", "remove", "pin"]),
            st.integers(min_value=0, max_value=7),
            st.floats(min_value=0.5, max_value=12.0),
        ),
        min_size=1,
        max_size=40,
    ),
    capacity=st.floats(min_value=4.0, max_value=32.0),
)
@settings(**_SETTINGS)
def test_residency_conserves_memory_unless_overcommitted(ops, capacity):
    """Property: occupied footprints fit the capacity while overcommits == 0.

    A random op sequence (admissions with no ``active`` protection, touches,
    removals, re-pins) must keep ``occupied_gb <= capacity_gb`` at every step
    until the set records its first overcommit.
    """
    rs = ResidencySet(capacity_gb=capacity)
    for op, idx, size in ops:
        name = f"v{idx}"
        if op == "admit":
            rs.admit(name, size)
        elif op == "touch":
            rs.touch(name)
        elif op == "remove":
            rs.remove(name)
        else:
            rs.pin([name])
        if rs.overcommits == 0:
            assert rs.occupied_gb <= rs.capacity_gb + 1e-9
        # Pinned-but-evicted is allowed (overcommit fallback), but the
        # resident map must never hold duplicates or negative sizes.
        assert all(weight > 0 for weight in rs._resident.values())


# --------------------------------------------------------------- config layer
def test_resource_config_default_matches_catalog():
    rc = ResourceConfig.default()
    assert rc.reload_aware
    for name in MODEL_FOOTPRINTS:
        assert rc.footprint_for(name).weights_gb == variant_footprint(name).weights_gb


def test_resource_config_from_weights_merges_catalog():
    rc = ResourceConfig.from_weights({"sd-turbo": 30.0, "sd-v1.5": 60.0})
    assert rc.footprint_for("sd-turbo").weights_gb == 30.0
    assert rc.footprint_for("sd-v1.5").weights_gb == 60.0
    # Untouched catalog entries ride along.
    assert rc.has_footprint("sdxl")
    with pytest.raises(KeyError):
        rc.footprint_for("not-a-variant")


def test_resource_config_token_is_canonical():
    a = ResourceConfig.from_weights({"sd-v1.5": 60.0, "sd-turbo": 30.0})
    b = ResourceConfig.from_weights({"sd-turbo": 30.0, "sd-v1.5": 60.0})
    assert a.token() == b.token()
    assert a.token() != ResourceConfig.default().token()
    assert ResourceConfig.default().token() != ResourceConfig.default(
        reload_aware=False
    ).token()


def test_resource_config_footprint_or_derived_fallback():
    rc = ResourceConfig.default()
    cascade = get_cascade("sdturbo")
    known = rc.footprint_or_derived(cascade.light)
    assert known.weights_gb == variant_footprint(cascade.light.name).weights_gb

    class FakeVariant:
        name = "derived-variant"
        memory_gb = 10.0

    derived = rc.footprint_or_derived(FakeVariant())
    assert derived.weights_gb == pytest.approx(8.0)


def test_resource_config_validate_fleet_flags_unhostable_variant():
    rc = ResourceConfig.from_weights({"sd-turbo": 99.0})
    fleet = fleet_from_counts({"a100": 2})
    cascade = get_cascade("sdturbo")
    with pytest.raises(ValueError, match="sd-turbo"):
        rc.validate_fleet(fleet, cascade.variants)


def test_worker_resources_ready_requires_completed_transfer():
    sim = Simulator(seed=0)
    rc = ResourceConfig.default()
    res = WorkerResources(
        config=rc,
        channel=BandwidthChannel(sim, capacity_gbps=16.0),
        residency=ResidencySet(capacity_gb=80.0),
    )
    res.residency.admit("sd-turbo", 5.0)
    assert res.ready("sd-turbo")
    res.residency.admit("sd-v1.5", 8.0)
    res.loading["sd-v1.5"] = res.channel.submit(8.0, None)
    assert not res.ready("sd-v1.5")  # mid-transfer: memory held, not usable


def test_device_classes_declare_transfer_bandwidth():
    for name, device in DEVICE_CLASSES.items():
        assert device.transfer_gbps > 0, name
