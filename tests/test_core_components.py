"""Tests for core building blocks: queries, demand estimation, queueing models,
repository and configuration."""

import pytest

from repro.core.config import RoutingMode, SystemConfig
from repro.core.demand import DemandEstimator
from repro.core.query import Query, QueryRecord, QueryStage
from repro.core.queueing import LittlesLawModel, TwoXExecutionModel
from repro.core.repository import ModelRepository
from repro.discriminators.heuristics import OracleDiscriminator
from repro.models.zoo import get_cascade, get_variant


# ----------------------------------------------------------------------- query
def test_query_deadline_and_validation():
    q = Query(query_id=0, arrival_time=2.0, prompt="a dog", difficulty=0.3, slo=5.0)
    assert q.deadline == pytest.approx(7.0)
    with pytest.raises(ValueError):
        Query(query_id=0, arrival_time=-1.0, prompt="", difficulty=0.3, slo=5.0)
    with pytest.raises(ValueError):
        Query(query_id=0, arrival_time=0.0, prompt="", difficulty=1.3, slo=5.0)
    with pytest.raises(ValueError):
        Query(query_id=0, arrival_time=0.0, prompt="", difficulty=0.3, slo=0.0)


def test_query_record_latency_and_violation():
    q = Query(query_id=0, arrival_time=1.0, prompt="x", difficulty=0.5, slo=2.0)
    on_time = QueryRecord(query=q, stage=QueryStage.LIGHT, completion_time=2.5)
    late = QueryRecord(query=q, stage=QueryStage.HEAVY, completion_time=4.0)
    dropped = QueryRecord(query=q, stage=QueryStage.DROPPED)
    assert on_time.latency == pytest.approx(1.5)
    assert not on_time.slo_violated
    assert late.slo_violated
    assert dropped.dropped and dropped.slo_violated and dropped.latency is None


# ---------------------------------------------------------------------- demand
def test_demand_estimator_ewma_behaviour():
    est = DemandEstimator(alpha=0.5, initial=0.0)
    assert est.estimate == 0.0
    est.observe(100, 10.0)  # 10 QPS
    assert est.estimate == pytest.approx(10.0)
    est.observe(0, 10.0)
    assert est.estimate == pytest.approx(5.0)
    est.reset()
    assert est.estimate == 0.0


def test_demand_estimator_converges_to_constant_rate():
    est = DemandEstimator(alpha=0.3)
    for _ in range(30):
        est.observe(80, 10.0)
    assert est.estimate == pytest.approx(8.0, rel=1e-3)


def test_demand_estimator_validation():
    with pytest.raises(ValueError):
        DemandEstimator(alpha=0.0)
    est = DemandEstimator()
    with pytest.raises(ValueError):
        est.observe(-1, 10.0)
    with pytest.raises(ValueError):
        est.observe(1, 0.0)


# -------------------------------------------------------------------- queueing
def test_littles_law_waiting_time():
    model = LittlesLawModel()
    # 20 queued queries at 10 QPS -> 2 seconds of queueing.
    assert model.waiting_time(20, 10.0, 1.0) == pytest.approx(2.0)
    # Empty queue still waits for the in-flight batch on average.
    assert model.waiting_time(0, 10.0, 1.0) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        model.waiting_time(-1, 10.0, 1.0)


def test_littles_law_floor_is_half_a_batch_execution():
    """Regression: the floor is the *residual* of the in-flight batch.

    The in-flight batch is on average halfway done, matching the Load
    Balancer's heavy-completion estimate (Section 3.3) — not a full batch
    execution, which would double-count the residual service time.
    """
    model = LittlesLawModel()
    for execution in (0.1, 1.0, 4.0):
        # The floor binds whenever Little's law predicts less than half a batch.
        assert model.waiting_time(0, 100.0, execution) == pytest.approx(execution / 2.0)
        assert model.waiting_time(1, 1000.0, execution) == pytest.approx(execution / 2.0)
    # Above the floor, Little's law wins untouched.
    assert model.waiting_time(10, 2.0, 1.0) == pytest.approx(5.0)


def test_two_x_execution_heuristic():
    model = TwoXExecutionModel()
    assert model.waiting_time(100, 1.0, 3.0) == pytest.approx(6.0)
    assert TwoXExecutionModel(multiplier=0.0).waiting_time(5, 1.0, 3.0) == 0.0


def test_queueing_models_diverge_under_load():
    """Little's law sees the backlog; the 2x heuristic does not (Section 4.5)."""
    littles = LittlesLawModel()
    heuristic = TwoXExecutionModel()
    execution = 2.0
    assert littles.waiting_time(100, 5.0, execution) > heuristic.waiting_time(
        100, 5.0, execution
    )


# ------------------------------------------------------------------ repository
def test_repository_variant_registration():
    repo = ModelRepository()
    light, heavy = get_variant("sd-turbo"), get_variant("sd-v1.5")
    repo.register_variant(light)
    repo.register_variant(heavy)
    repo.register_variant(light)  # idempotent
    assert len(repo) == 2
    assert "sd-turbo" in repo
    assert repo.get_variant("sd-turbo") is light
    with pytest.raises(KeyError):
        repo.get_variant("missing")


def test_repository_discriminator_registration():
    repo = ModelRepository()
    light, heavy = get_variant("sd-turbo"), get_variant("sd-v1.5")
    repo.register_variant(light)
    repo.register_variant(heavy)
    disc = OracleDiscriminator()
    repo.register_discriminator("sd-turbo", "sd-v1.5", disc)
    assert repo.get_discriminator("sd-turbo", "sd-v1.5") is disc
    assert repo.cascades() == [("sd-turbo", "sd-v1.5")]
    with pytest.raises(KeyError):
        repo.register_discriminator("missing", "sd-v1.5", disc)
    with pytest.raises(KeyError):
        repo.get_discriminator("sd-v1.5", "sd-turbo")


# --------------------------------------------------------------------- config
def test_system_config_defaults_and_validation():
    cascade = get_cascade("sdturbo")
    config = SystemConfig(cascade=cascade)
    assert config.slo == cascade.slo
    assert config.routing == RoutingMode.CASCADE
    with pytest.raises(ValueError):
        SystemConfig(cascade=cascade, num_workers=0)
    with pytest.raises(ValueError):
        SystemConfig(cascade=cascade, over_provision=0.9)
    with pytest.raises(ValueError):
        SystemConfig(cascade=cascade, control_period=0.0)
    with pytest.raises(ValueError):
        SystemConfig(cascade=cascade, slo=-1.0)
