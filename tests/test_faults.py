"""Fault injection and self-healing recovery: parsing, determinism, accounting.

The contract under test (PR 8 tentpole):

* a :class:`~repro.faults.plan.FaultPlan` is a pure, canonical description —
  tokens are deterministic and equivalent spellings share one token;
* ``faults=None`` stays bit-for-bit legacy (pinned against the PR 7 golden);
* fault scenarios are deterministic: same seed + same plan means
  byte-identical summaries, serial and sharded alike;
* recovery conserves queries — every arrival gets exactly one terminal
  record, retries notwithstanding — and backoff delays grow monotonically
  per query;
* an unmitigated mid-epoch crash degrades gracefully (drops, completes)
  instead of raising.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allocator import AllocationPlan
from repro.core.config import fleet_from_counts
from repro.core.sharding import run_sharded
from repro.core.system import ClientSource, build_diffserve_system
from repro.faults.plan import (
    FAULT_PLANS,
    CrashStorm,
    FaultPlan,
    RecoveryConfig,
    RegionPartition,
    SolverTimeout,
    SpotRevocation,
    StragglerSlowdown,
    WorkerCrash,
    get_fault_plan,
    parse_faults,
)
from repro.faults.plan_store import PlanStore
from repro.runner.executor import canonical_summaries_json
from repro.simulator.rng import RandomStreams
from repro.workloads import make_workload

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")

# Hypothesis settings: keep runtimes modest (each example is a full
# simulation), silence fixture-scope warnings.
_SETTINGS = dict(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def small_system(faults=None, **overrides):
    defaults = dict(
        num_workers=4,
        dataset_size=100,
        seed=3,
        replan_epoch=3.0,
        replan_policy="adaptive",
    )
    defaults.update(overrides)
    return build_diffserve_system(faults=faults, **defaults)


def small_workload(seed=3):
    return make_workload("static", duration=40.0, qps=6.0, seed=seed)


def run_prepared(system, workload, *, duration=None):
    """Run via the runtime so internals (load balancer, injector) stay visible."""
    runtime = system.prepare()
    source = ClientSource(
        runtime.sim, workload, system.dataset, runtime.load_balancer, system.config.slo
    )
    horizon = duration if duration is not None else system.horizon(workload)
    runtime.sim.run(until=horizon)
    return runtime, source, runtime.result(horizon)


# ------------------------------------------------------------------- parsing
def test_catalog_names_parse():
    for name in FAULT_PLANS:
        plan = parse_faults(name)
        assert isinstance(plan, FaultPlan)
        assert plan is get_fault_plan(name)


def test_blank_parses_to_none():
    assert parse_faults(None) is None
    assert parse_faults("") is None
    assert parse_faults("   ") is None


def test_unknown_catalog_name_is_one_line_error():
    with pytest.raises(ValueError, match="unknown fault plan 'nope'"):
        parse_faults("nope")


def test_malformed_json_is_one_line_error():
    with pytest.raises(ValueError, match="malformed JSON for --faults"):
        parse_faults('{"faults": [')


def test_unknown_fault_kind_names_the_kind():
    with pytest.raises(ValueError, match="meteor"):
        parse_faults('{"faults": [{"kind": "meteor", "at": 1.0}]}')


def test_unknown_fault_key_names_the_key():
    with pytest.raises(ValueError, match="worker_idx"):
        parse_faults('{"faults": [{"kind": "crash", "worker_idx": 0, "at": 1.0}]}')


def test_out_of_range_param_names_the_key():
    with pytest.raises(ValueError, match="at"):
        parse_faults('{"faults": [{"kind": "crash", "worker": 0, "at": -5}]}')
    with pytest.raises(ValueError, match="factor"):
        parse_faults(
            '{"faults": [{"kind": "straggler", "worker": 0, "at": 1, '
            '"duration": 5, "factor": 0.5}]}'
        )


def test_unknown_top_level_key_rejected():
    with pytest.raises(ValueError, match="banana"):
        parse_faults('{"faults": [], "banana": 1}')


def test_recovery_spellings():
    on = parse_faults('{"faults": [], "recovery": true}')
    assert on.recovery == RecoveryConfig()
    off = parse_faults('{"faults": [], "recovery": false}')
    assert off.recovery is None
    tuned = parse_faults('{"faults": [], "recovery": {"retry_budget": 5}}')
    assert tuned.recovery.retry_budget == 5
    with pytest.raises(ValueError, match="retry_allowance"):
        parse_faults('{"faults": [], "recovery": {"retry_allowance": 5}}')


def test_fault_param_validation():
    with pytest.raises(ValueError):
        WorkerCrash(worker=-1, at=1.0)
    with pytest.raises(ValueError):
        StragglerSlowdown(worker=0, at=1.0, duration=0.0)
    with pytest.raises(ValueError):
        SpotRevocation(worker=0, at=1.0, notice=-1.0)
    with pytest.raises(ValueError):
        CrashStorm(count=0, at=1.0, duration=5.0)
    with pytest.raises(ValueError):
        RecoveryConfig(retry_budget=-1)


# -------------------------------------------------------------------- tokens
def test_tokens_are_canonical():
    # Fault order does not matter: FaultPlan sorts canonically.
    a = FaultPlan(faults=(WorkerCrash(1, 8.0), StragglerSlowdown(0, 2.0, 10.0)))
    b = FaultPlan(faults=(StragglerSlowdown(0, 2.0, 10.0), WorkerCrash(1, 8.0)))
    assert a.token() == b.token()
    assert a == b


def test_json_spelling_shares_catalog_token():
    json_plan = parse_faults('{"faults": [{"kind": "crash", "worker": 1, "at": 8.0}]}')
    assert json_plan.token() == get_fault_plan("crash").token()


def test_spec_token_includes_resolved_faults():
    from repro.experiments.harness import ExperimentScale
    from repro.runner.spec import ExperimentSpec

    scale = ExperimentScale()
    bare = ExperimentSpec(cascade="sdturbo", scale=scale)
    assert "faults(" not in bare.token()
    spec = ExperimentSpec(cascade="sdturbo", scale=scale, faults="crash")
    assert f"faults({get_fault_plan('crash').token()})" in spec.token()
    json_spec = ExperimentSpec(
        cascade="sdturbo",
        scale=scale,
        faults='{"faults": [{"kind": "crash", "worker": 1, "at": 8.0}]}',
    )
    assert json_spec.content_hash == spec.content_hash
    with pytest.raises(ValueError, match="unknown fault plan"):
        ExperimentSpec(cascade="sdturbo", scale=scale, faults="nope")


# -------------------------------------------------- golden: faults=None legacy
#: PR 7 golden for the adaptive re-planned flash-crowd cell (see
#: tests/test_resources_regression.py); ``faults=None`` must reproduce it
#: bit-for-bit — arming the faults *dimension* without a plan changes nothing.
GOLDEN_REPLAN = {
    "total_queries": 354.0,
    "completed": 352.0,
    "fid": 18.4136463436761,
    "slo_violation_ratio": 0.005649717514124294,
    "deferral_rate": 0.13920454545454544,
    "dropped": 2.0,
    "mean_quality": 0.7277457801755226,
    "mean_latency": 0.8601924912424341,
    "p50_latency": 0.20735231122277575,
    "p99_latency": 3.8771323032797107,
    "fleet_cost": 0.06666666666666667,
}


def test_faults_none_matches_pr7_golden():
    system = build_diffserve_system(
        "sdturbo",
        num_workers=4,
        dataset_size=120,
        seed=0,
        replan_epoch=3.0,
        replan_policy="adaptive",
        faults=None,
    )
    workload = make_workload("flash-crowd", duration=40.0, qps=6.0, seed=0)
    assert system.run(workload).summary() == GOLDEN_REPLAN


def test_quiet_plan_matches_faults_none_summary():
    """Arming recovery with zero faults must not perturb a healthy run."""
    baseline = small_system().run(small_workload()).summary()
    quiet = small_system(faults=get_fault_plan("quiet")).run(small_workload()).summary()
    assert canonical_summaries_json({"s": quiet}) == canonical_summaries_json({"s": baseline})


# -------------------------------------------------------------- determinism
@pytest.mark.xdist_group("sharding-determinism")
@pytest.mark.parametrize("plan_name", ["storm", "chaos"])
def test_fault_runs_deterministic_serial_vs_sharded(plan_name):
    """Same seed + same FaultPlan: byte-identical summaries, serial vs sharded.

    ``chaos`` exercises the stochastic crash storm, whose times/targets are
    drawn from the sim's named ``faults`` stream — a pure function of the
    seed, so sharding cannot perturb it.
    """
    serial = small_system(faults=get_fault_plan(plan_name)).run(small_workload())
    sharded = run_sharded(small_system(faults=get_fault_plan(plan_name)), small_workload())
    assert canonical_summaries_json({"s": sharded.summary()}) == canonical_summaries_json(
        {"s": serial.summary()}
    )


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    plan_name=st.sampled_from(["crash", "storm", "chaos"]),
)
@settings(**_SETTINGS)
def test_fault_runs_deterministic_across_repeats(seed, plan_name):
    """Hypothesis: any (seed, plan) pair reproduces byte-identically."""

    def once():
        system = small_system(faults=get_fault_plan(plan_name), seed=seed, dataset_size=60)
        return system.run(make_workload("static", duration=20.0, qps=5.0, seed=seed)).summary()

    assert canonical_summaries_json({"s": once()}) == canonical_summaries_json({"s": once()})


# -------------------------------------------------------- retry accounting
def test_retries_conserve_query_count():
    """Every arrival gets exactly one terminal record, retries notwithstanding."""
    workload = small_workload()
    trace = workload.sample(RandomStreams(3))
    # Generous horizon so retried queries resolve before the run ends.
    horizon = trace.duration + 30.0
    runtime, source, result = run_prepared(
        small_system(faults=get_fault_plan("storm")), trace, duration=horizon
    )
    summary = result.summary()
    assert runtime.load_balancer.requeues > 0, "storm should exercise the retry path"
    assert summary["total_queries"] == source.total_queries
    assert summary["completed"] + summary["dropped"] == summary["total_queries"]
    # Retried queries carry their retry count on the record, and the recorded
    # retries never exceed the load balancer's requeue notifications.
    recorded_retries = sum(record.retries for record in result.records)
    assert recorded_retries > 0
    assert recorded_retries <= runtime.load_balancer.requeues


def test_backoff_delays_monotone_per_query():
    runtime, _, _ = run_prepared(
        small_system(faults=get_fault_plan("storm")), small_workload()
    )
    log = runtime.load_balancer.retry_log
    assert log, "storm should schedule retries"
    per_query = {}
    for query_id, delay in log:
        per_query.setdefault(query_id, []).append(delay)
    for query_id, delays in per_query.items():
        assert delays == sorted(delays), f"query {query_id} backoff not monotone: {delays}"
    # Exponential: consecutive retries of one query double the delay.
    for delays in per_query.values():
        for first, second in zip(delays, delays[1:]):
            assert second == pytest.approx(2.0 * first)


@given(budget=st.integers(min_value=0, max_value=3))
@settings(**_SETTINGS)
def test_retry_budget_bounds_requeues(budget):
    """Requeues per query never exceed the configured retry budget."""
    plan = FaultPlan(
        faults=(WorkerCrash(1, 6.0), WorkerCrash(2, 9.0)),
        recovery=RecoveryConfig(retry_budget=budget),
    )
    runtime, _, result = run_prepared(
        small_system(faults=plan, dataset_size=60),
        make_workload("static", duration=20.0, qps=5.0, seed=3),
    )
    assert max((record.retries for record in result.records), default=0) <= budget


# -------------------------------------------------- graceful degradation
def test_unmitigated_crash_degrades_gracefully():
    """A mid-epoch crash with recovery off costs queries, never the run."""
    result = small_system(faults=get_fault_plan("crash-norecovery")).run(small_workload())
    summary = result.summary()
    assert summary["completed"] > 0
    assert summary["dropped"] > 0  # the orphaned in-flight work is accounted
    assert summary["completed"] + summary["dropped"] == summary["total_queries"]


def test_recovery_beats_norecovery_under_storm():
    """The chaos experiment's headline, at unit-test scale."""
    on = small_system(faults=get_fault_plan("storm"), num_workers=6).run(small_workload())
    off = small_system(faults=get_fault_plan("storm-norecovery"), num_workers=6).run(
        small_workload()
    )
    assert on.summary()["slo_violation_ratio"] <= off.summary()["slo_violation_ratio"] + 1e-9
    assert on.summary()["p99_latency"] <= off.summary()["p99_latency"] + 1e-9


def test_revocation_notice_drains_before_kill():
    system = small_system(faults=get_fault_plan("revocation"))
    workload = small_workload()
    runtime, _, result = run_prepared(system, workload)
    injector = next(a for a in runtime.sim.actors if a.name == "fault-injector")
    assert any("decommissioned" in line for _, line in injector.log)
    assert result.summary()["completed"] > 0


def test_solver_timeout_degrades_to_last_known_good():
    runtime, _, result = run_prepared(
        small_system(faults=get_fault_plan("solver-timeout")), small_workload()
    )
    # The plan store recalled at least one last-known-good plan...
    assert runtime.controller.plan_store is not None
    assert runtime.controller.plan_store.recalls > 0
    # ... the replanner marked those epochs degraded ...
    assert runtime.replanner is not None
    assert any(snapshot.degraded for snapshot in runtime.replanner.history)
    # ... and the system kept serving.
    assert result.summary()["completed"] > 0


# ------------------------------------------------------------- plan store
def _typed_plan(**overrides):
    defaults = dict(
        num_light=3,
        num_heavy=1,
        light_batch=4,
        heavy_batch=2,
        threshold=0.5,
        heavy_fraction=0.25,
        feasible=True,
        light_assignment={"a100": 3},
        heavy_assignment={"a100": 1},
    )
    defaults.update(overrides)
    return AllocationPlan(**defaults)


def test_plan_store_records_only_feasible():
    store = PlanStore()
    fleet = fleet_from_counts({"a100": 4})
    store.record(_typed_plan(), fleet)
    store.record(_typed_plan(feasible=False, num_light=0, num_heavy=0,
                             light_assignment=None, heavy_assignment=None), fleet)
    assert len(store) == 1


def test_plan_store_capacity_bounded():
    store = PlanStore(capacity=3)
    fleet = fleet_from_counts({"a100": 4})
    for _ in range(10):
        store.record(_typed_plan(), fleet)
    assert len(store) == 3


def test_plan_store_recall_clamps_to_shrunken_fleet():
    store = PlanStore()
    store.record(_typed_plan(), fleet_from_counts({"a100": 4}))
    recalled = store.recall(fleet_from_counts({"a100": 2}))
    assert recalled is not None
    assert recalled.num_light + recalled.num_heavy <= 2
    assert not recalled.feasible  # degraded, never re-recorded
    assert store.recalls == 1


def test_plan_store_recall_none_when_empty():
    store = PlanStore()
    assert store.recall(fleet_from_counts({"a100": 2})) is None
    assert store.last_known_good is None


def test_plan_store_recall_does_not_mutate_recorded_plan():
    store = PlanStore()
    store.record(_typed_plan(), fleet_from_counts({"a100": 4}))
    store.recall(fleet_from_counts({"a100": 1}))
    kept = store.last_known_good
    assert kept.feasible and kept.num_light == 3


# -------------------------------------------------------------- partitions
def test_partition_fault_validated():
    with pytest.raises(ValueError):
        RegionPartition(region="", at=1.0, duration=5.0)
    plan = parse_faults(
        '{"faults": [{"kind": "partition", "region": "eu", "at": 1.0, "duration": 5.0}]}'
    )
    assert isinstance(plan.faults[0], RegionPartition)


def test_geo_router_skips_partitioned_regions():
    from repro.core.geo import GeoRouter, GeoTopology, RegionSpec

    topology = GeoTopology(
        regions=(
            RegionSpec(name="eu", fleet=fleet_from_counts({"a100": 2}), rtt_s=0.02),
            RegionSpec(name="us", fleet=fleet_from_counts({"a100": 2}), rtt_s=0.01),
        )
    )
    router = GeoRouter(topology)
    with pytest.raises(KeyError):
        router.set_partitioned(["mars"])
    us = next(r for r in topology.regions if r.name == "us")
    # Heavy backlog in "us" would normally spill into the idle "eu" region...
    router.loads["us"].routed = 1000
    router.set_partitioned(["eu"])
    assert router.partitioned == frozenset({"eu"})
    # ... but the link into a partitioned region is down, so the query stays.
    assert router.route(us).region == "us"
    router.set_partitioned([])
    assert router.route(us).region == "eu"
    # A partitioned *origin* cannot spill out either.
    router.set_partitioned(["us"])
    assert router.route(us).region == "us"


# ------------------------------------------------------------- worker model
def test_worker_fail_is_idempotent_and_orphans_once():
    system = small_system()
    runtime = system.prepare()
    runtime.sim.start()
    worker = runtime.controller.workers[0]
    orphans = worker.fail()
    assert worker.failed
    assert worker.fail() == []  # second call is a no-op
    assert not worker.queue and not worker._inflight
    assert isinstance(orphans, list)


def test_failed_worker_routes_enqueues_to_on_fail():
    system = small_system()
    runtime = system.prepare()
    runtime.sim.start()
    worker = runtime.controller.workers[0]
    worker.fail()
    caught = []
    worker.on_fail = caught.append
    from repro.core.query import Query
    from repro.core.worker import WorkItem

    query = Query(query_id=0, arrival_time=0.0, prompt="p", difficulty=0.5, slo=5.0)
    worker.enqueue(WorkItem(query=query, stage="light", enqueue_time=0.0))
    assert len(caught) == 1
    assert not worker.queue  # never queued on the dead worker


# ------------------------------------------- chunked feeding / profiler gates
def test_chunk_size_and_profiler_are_summary_neutral_faulted():
    """Arrival chunking and the profiler never perturb a faulted run.

    The recovery loop (requeues, backoff retries, repairs) re-enters the
    arrival path repeatedly, so this pins the chunked feeder's neutrality on
    the gnarliest configuration: a crash storm with self-healing enabled.
    """
    workload = make_workload("static", duration=20.0, qps=5.0, seed=3)

    def run(**fields):
        system = dataclasses.replace(small_system(faults=get_fault_plan("storm")), **fields)
        return canonical_summaries_json({"s": system.run(workload).summary()})

    reference = run()
    assert run(arrival_chunk=1) == reference
    assert run(arrival_chunk=7) == reference
    assert run(profile=True) == reference
