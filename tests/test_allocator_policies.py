"""Tests for the DiffServe MILP allocator and allocation policies."""

import pytest

from repro.core.allocator import AllocationPlan, ControlContext, DiffServeAllocator
from repro.core.policies import (
    AIMDBatchState,
    AIMDBatchingPolicy,
    DiffServePolicy,
    StaticThresholdPolicy,
    make_diffserve_policy,
)
from repro.core.queueing import TwoXExecutionModel
from repro.milp.branch_and_bound import BranchAndBoundSolver


def ctx(demand, *, slo=5.0, workers=16, **kwargs):
    return ControlContext(demand=demand, slo=slo, num_workers=workers, **kwargs)


# ------------------------------------------------------------------------ plan
def test_allocation_plan_validation():
    with pytest.raises(ValueError):
        AllocationPlan(num_light=-1, num_heavy=0, light_batch=1, heavy_batch=1, threshold=0.5)
    with pytest.raises(ValueError):
        AllocationPlan(num_light=1, num_heavy=0, light_batch=0, heavy_batch=1, threshold=0.5)
    with pytest.raises(ValueError):
        AllocationPlan(num_light=1, num_heavy=0, light_batch=1, heavy_batch=1, threshold=1.5)
    plan = AllocationPlan(num_light=3, num_heavy=5, light_batch=2, heavy_batch=1, threshold=0.5)
    assert plan.total_workers == 8


def test_control_context_validation():
    with pytest.raises(ValueError):
        ControlContext(demand=-1.0, slo=5.0, num_workers=16)
    with pytest.raises(ValueError):
        ControlContext(demand=1.0, slo=0.0, num_workers=16)


# ------------------------------------------------------------------- allocator
def test_low_demand_maximises_threshold(allocator):
    plan = allocator.plan(ctx(3.0, observed_deferral=0.5))
    assert plan.feasible
    assert plan.threshold == pytest.approx(1.0)
    assert plan.num_light >= 1
    assert plan.num_heavy >= 1


def test_threshold_decreases_with_demand(allocator):
    thresholds = []
    for demand in (4.0, 12.0, 20.0, 28.0):
        plan = allocator.plan(ctx(demand, observed_deferral=0.4))
        thresholds.append(plan.threshold)
    assert all(b <= a + 1e-9 for a, b in zip(thresholds, thresholds[1:]))
    assert thresholds[-1] < thresholds[0]


def test_plan_satisfies_throughput_constraints(allocator, cascade1):
    for demand in (6.0, 16.0, 26.0):
        plan = allocator.plan(ctx(demand, observed_deferral=0.4))
        assert plan.feasible
        provisioned = demand * allocator.over_provision
        light_capacity = plan.num_light * cascade1.light.throughput(plan.light_batch)
        heavy_capacity = plan.num_heavy * cascade1.heavy.throughput(plan.heavy_batch)
        assert light_capacity >= provisioned - 1e-6
        assert heavy_capacity >= provisioned * plan.heavy_fraction - 1e-6
        assert plan.total_workers <= 16


def test_plan_uses_all_workers(allocator):
    plan = allocator.plan(ctx(10.0, observed_deferral=0.4))
    assert plan.total_workers == 16


def test_overload_falls_back_to_best_effort(allocator):
    plan = allocator.plan(ctx(500.0, observed_deferral=0.5))
    assert not plan.feasible
    assert plan.num_heavy == 0
    assert plan.threshold == 0.0


def test_solver_time_recorded_and_reasonable(allocator):
    plan = allocator.plan(ctx(16.0, observed_deferral=0.4))
    assert 0 < plan.solver_time_s < 2.0
    assert allocator.mean_solve_time_s > 0


def test_fraction_and_binary_formulations_agree(allocator):
    context = ctx(16.0, observed_deferral=0.4)
    demand = 16.0 * allocator.over_provision
    frac_problem = allocator.build_problem(context, 1, 2, demand, formulation="fraction")
    bin_problem = allocator.build_problem(context, 1, 2, demand, formulation="binary")
    solver = BranchAndBoundSolver()
    frac_solution = solver.solve(frac_problem)
    bin_solution = solver.solve(bin_problem)
    assert frac_solution.is_optimal and bin_solution.is_optimal
    frac_threshold, _ = allocator._threshold_from_solution(frac_solution)
    bin_threshold, _ = allocator._threshold_from_solution(bin_solution)
    # Both formulations should land on (nearly) the same grid threshold.
    assert frac_threshold == pytest.approx(bin_threshold, abs=0.06)
    with pytest.raises(ValueError):
        allocator.build_problem(context, 1, 2, demand, formulation="other")


def test_tighter_slo_prevents_large_batches(cascade1, deferral_profile):
    allocator = DiffServeAllocator(cascade1.light, cascade1.heavy, deferral_profile)
    tight = allocator.plan(ctx(8.0, slo=2.5, observed_deferral=0.3))
    loose = allocator.plan(ctx(8.0, slo=10.0, observed_deferral=0.3))
    assert tight.heavy_batch <= loose.heavy_batch
    # A looser SLO can never yield a lower threshold at equal demand.
    assert loose.threshold >= tight.threshold - 1e-9


def test_queue_backlog_restricts_plan(allocator):
    clean = allocator.plan(ctx(12.0, observed_deferral=0.4))
    backlogged = allocator.plan(
        ctx(12.0, observed_deferral=0.4, light_queue_length=200, heavy_queue_length=200)
    )
    # With a huge backlog the latency budget rules out (most) deferral.
    assert backlogged.threshold <= clean.threshold + 1e-9


def test_allocator_validation(cascade1, deferral_profile):
    with pytest.raises(ValueError):
        DiffServeAllocator(cascade1.light, cascade1.heavy, deferral_profile, over_provision=0.9)
    with pytest.raises(ValueError):
        DiffServeAllocator(
            cascade1.light, cascade1.heavy, deferral_profile, threshold_levels=1
        )


# -------------------------------------------------------------------- policies
def test_diffserve_policy_delegates_to_allocator(allocator):
    policy = DiffServePolicy(allocator)
    assert policy.dynamic
    plan = policy.plan(ctx(10.0, observed_deferral=0.4))
    assert isinstance(plan, AllocationPlan)


def test_static_threshold_policy_pins_threshold(allocator):
    policy = StaticThresholdPolicy(allocator, threshold=0.5)
    for demand in (4.0, 24.0):
        plan = policy.plan(ctx(demand, observed_deferral=0.4))
        if plan.feasible:
            assert plan.threshold == pytest.approx(0.5)
    with pytest.raises(ValueError):
        StaticThresholdPolicy(allocator, threshold=2.0)


def test_aimd_state_additive_increase_multiplicative_decrease():
    state = AIMDBatchState(batch=4, max_batch=16)
    assert state.update(had_violation=False) == 5
    assert state.update(had_violation=True) == 2
    assert state.update(had_violation=True) == 1
    assert state.update(had_violation=False) == 2
    for _ in range(40):
        state.update(had_violation=False)
    assert state.batch == 16  # capped


def test_aimd_policy_reacts_to_violations(allocator):
    policy = AIMDBatchingPolicy(allocator)
    grown = policy.plan(ctx(6.0, observed_deferral=0.3, slo_violations_in_window=0))
    shrunk = policy.plan(ctx(6.0, observed_deferral=0.3, slo_violations_in_window=5))
    assert shrunk.light_batch <= grown.light_batch
    # AIMD disables the proactive queueing model.
    assert isinstance(allocator.queueing_model, TwoXExecutionModel)
    assert allocator.queueing_model.multiplier == 0.0


def test_make_diffserve_policy_variants(cascade1, deferral_profile):
    for variant, cls in (
        ("full", DiffServePolicy),
        ("static-threshold", StaticThresholdPolicy),
        ("aimd", AIMDBatchingPolicy),
        ("no-queueing", DiffServePolicy),
    ):
        policy = make_diffserve_policy(
            cascade1.light, cascade1.heavy, deferral_profile, variant=variant
        )
        assert isinstance(policy, cls)
    no_q = make_diffserve_policy(
        cascade1.light, cascade1.heavy, deferral_profile, variant="no-queueing"
    )
    assert isinstance(no_q.allocator.queueing_model, TwoXExecutionModel)
    with pytest.raises(ValueError):
        make_diffserve_policy(cascade1.light, cascade1.heavy, deferral_profile, variant="bogus")
