"""End-to-end determinism regression: the guarantee PRs 1-2 claim.

The same grid cell must produce byte-identical summary dicts whether it runs
inline or in a spawned worker process, and across repeat runs with the same
seed — with and without the online re-planning control plane attached.  Cells
are executed with fresh cache roots so every run actually simulates (a cache
hit would make the comparison vacuous).
"""

from repro.experiments.harness import ExperimentScale
from repro.runner.cache import ArtifactCache
from repro.runner.executor import canonical_summaries_json, run_grid
from repro.runner.spec import ExperimentGrid, ExperimentSpec, TraceSpec

#: Smallest scale the harness accepts; keeps three full simulations per run
#: affordable while still exercising every layer.
TINY = ExperimentScale(dataset_size=60, trace_duration=10.0, num_workers=2, seed=0)


def _grid() -> ExperimentGrid:
    base = ExperimentSpec(
        cascade="sdturbo",
        scale=TINY,
        systems=("diffserve",),
        trace=TraceSpec(kind="flash-crowd"),
    )
    return ExperimentGrid.of(
        [
            base,  # legacy fixed-period control loop
            base.with_params(replan_epoch=2.0, replan_policy="periodic"),
            base.with_params(replan_epoch=2.0, replan_policy="adaptive"),
        ]
    )


def test_serial_pool_and_repeat_runs_are_byte_identical(tmp_path):
    grid = _grid()
    serial = run_grid(grid, jobs=1, cache=ArtifactCache(root=tmp_path / "serial"))
    pooled = run_grid(grid, jobs=2, cache=ArtifactCache(root=tmp_path / "pooled"))
    repeat = run_grid(grid, jobs=1, cache=ArtifactCache(root=tmp_path / "repeat"))

    for report in (serial, pooled, repeat):
        assert report.ok
        assert report.cached_count == 0  # every run really simulated

    for s_cell, p_cell, r_cell in zip(serial.cells, pooled.cells, repeat.cells):
        expected = canonical_summaries_json(s_cell.summaries)
        assert canonical_summaries_json(p_cell.summaries) == expected, s_cell.spec.label
        assert canonical_summaries_json(r_cell.summaries) == expected, s_cell.spec.label

    # Re-planning changes the system's behaviour: the periodic cell differs
    # from the legacy control loop.  (The adaptive arm may legitimately
    # coincide with either — skipping unnecessary re-solves is its point.)
    legacy, periodic, _adaptive = (
        canonical_summaries_json(cell.summaries) for cell in serial.cells
    )
    assert legacy != periodic


def test_replan_dimensions_are_part_of_the_cache_key():
    base, periodic, adaptive = _grid()
    assert len({base.cache_key, periodic.cache_key, adaptive.cache_key}) == 3
    # And the params survive the round trip into builder kwargs.
    assert periodic.params_dict() == {"replan_epoch": 2.0, "replan_policy": "periodic"}
