"""Tests for the CI benchmark-comparison gate (``benchmarks/compare.py``)."""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
from benchmarks import compare  # noqa: E402


def write_snapshot(path, name, *, median, extra_info=None):
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "benchmarks": [
            {
                "fullname": name,
                "stats": {"median": median, "mean": median},
                "extra_info": extra_info or {},
            }
        ]
    }
    path.write_text(json.dumps(payload))


def test_within_threshold_passes(tmp_path, capsys):
    write_snapshot(tmp_path / "old" / "BENCH_x.json", "bench_x", median=1.0)
    write_snapshot(tmp_path / "new" / "BENCH_x.json", "bench_x", median=1.2)
    assert compare.main([str(tmp_path / "old"), str(tmp_path / "new")]) == 0
    out = capsys.readouterr().out
    assert "+20.0%" in out and "✅" in out


def test_median_regression_fails(tmp_path, capsys):
    write_snapshot(tmp_path / "old" / "BENCH_x.json", "bench_x", median=1.0)
    write_snapshot(tmp_path / "new" / "BENCH_x.json", "bench_x", median=1.5)
    assert compare.main([str(tmp_path / "old"), str(tmp_path / "new")]) == 1
    captured = capsys.readouterr()
    assert "❌" in captured.out
    assert "median_s" in captured.err


def test_gated_extra_info_is_higher_is_better(tmp_path, capsys):
    write_snapshot(
        tmp_path / "old" / "BENCH_x.json",
        "bench_x",
        median=1.0,
        extra_info={"gated_speedup_x4": 4.0, "events_per_sec": 100.0},
    )
    # Throughput halves (fails the gate) while the median improves; the
    # ungated extra_info never enters the table.
    write_snapshot(
        tmp_path / "new" / "BENCH_x.json",
        "bench_x",
        median=0.9,
        extra_info={"gated_speedup_x4": 2.0, "events_per_sec": 1.0},
    )
    assert compare.main([str(tmp_path / "old"), str(tmp_path / "new")]) == 1
    captured = capsys.readouterr()
    assert "gated_speedup_x4" in captured.err
    assert "events_per_sec" not in captured.out


def test_threshold_flag_and_improvements(tmp_path):
    write_snapshot(tmp_path / "old" / "BENCH_x.json", "bench_x", median=1.0)
    write_snapshot(tmp_path / "new" / "BENCH_x.json", "bench_x", median=1.4)
    assert compare.main([str(tmp_path / "old"), str(tmp_path / "new"), "--threshold", "50"]) == 0
    write_snapshot(tmp_path / "new" / "BENCH_x.json", "bench_x", median=0.1)
    assert compare.main([str(tmp_path / "old"), str(tmp_path / "new")]) == 0


def test_missing_baseline_is_a_note_not_a_failure(tmp_path, capsys):
    write_snapshot(tmp_path / "new" / "BENCH_x.json", "bench_x", median=1.0)
    assert compare.main([str(tmp_path / "missing"), str(tmp_path / "new")]) == 0
    assert "No baseline benchmarks" in capsys.readouterr().out


def test_missing_current_is_an_error(tmp_path, capsys):
    write_snapshot(tmp_path / "old" / "BENCH_x.json", "bench_x", median=1.0)
    assert compare.main([str(tmp_path / "old"), str(tmp_path / "nothing")]) == 2
    assert "no benchmark JSON" in capsys.readouterr().err


def test_new_and_vanished_benchmarks_are_informational(tmp_path, capsys):
    write_snapshot(tmp_path / "old" / "BENCH_a.json", "bench_a", median=1.0)
    write_snapshot(tmp_path / "new" / "BENCH_b.json", "bench_b", median=2.0)
    assert compare.main([str(tmp_path / "old"), str(tmp_path / "new")]) == 0
    out = capsys.readouterr().out
    assert "new" in out and "missing" in out


def test_summary_is_appended_to_github_step_summary(tmp_path, monkeypatch):
    summary = tmp_path / "summary.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    write_snapshot(tmp_path / "old" / "BENCH_x.json", "bench_x", median=1.0)
    write_snapshot(tmp_path / "new" / "BENCH_x.json", "bench_x", median=1.0)
    assert compare.main([str(tmp_path / "old"), str(tmp_path / "new")]) == 0
    assert "Benchmark comparison" in summary.read_text()


def test_corrupt_baseline_file_is_skipped(tmp_path, capsys):
    bad = tmp_path / "old" / "BENCH_bad.json"
    bad.parent.mkdir(parents=True)
    bad.write_text("{not json")
    write_snapshot(tmp_path / "old" / "BENCH_x.json", "bench_x", median=1.0)
    write_snapshot(tmp_path / "new" / "BENCH_x.json", "bench_x", median=1.0)
    assert compare.main([str(tmp_path / "old"), str(tmp_path / "new")]) == 0
    assert "skipping unreadable" in capsys.readouterr().out


def test_change_pct_orientation():
    assert compare._change_pct(1.0, 1.5, higher_is_better=False) == pytest.approx(50.0)
    assert compare._change_pct(1.0, 0.5, higher_is_better=True) == pytest.approx(50.0)
    assert compare._change_pct(2.0, 4.0, higher_is_better=True) == pytest.approx(-100.0)
    assert compare._change_pct(0.0, 1.0, higher_is_better=False) == 0.0
