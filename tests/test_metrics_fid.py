"""Tests for the FID metric."""

import numpy as np
import pytest

from repro.metrics.fid import fid_from_images, fid_score, frechet_distance, windowed_fid


def test_identical_distributions_give_near_zero_fid():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(2000, 8))
    b = rng.normal(size=(2000, 8))
    assert fid_score(a, b) < 0.2


def test_fid_is_nonnegative_and_grows_with_mean_shift():
    rng = np.random.default_rng(0)
    base = rng.normal(size=(1000, 8))
    small = base + 0.5
    large = base + 2.0
    f_small = fid_score(small, base)
    f_large = fid_score(large, base)
    assert 0 <= f_small < f_large
    # Mean-shift contribution is ||shift||^2 = d * shift^2.
    assert f_large == pytest.approx(8 * 4.0, rel=0.2)


def test_fid_detects_covariance_mismatch():
    rng = np.random.default_rng(0)
    base = rng.normal(size=(3000, 8))
    wide = 2.0 * rng.normal(size=(3000, 8))
    assert fid_score(wide, base) > 1.0


def test_fid_roughly_symmetric():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(1500, 6)) + 1.0
    b = rng.normal(size=(1500, 6))
    assert fid_score(a, b) == pytest.approx(fid_score(b, a), rel=0.05, abs=0.05)


def test_frechet_distance_exact_for_known_gaussians():
    mu1, mu2 = np.zeros(4), np.ones(4)
    sigma = np.eye(4)
    # Identical covariances: distance reduces to ||mu1 - mu2||^2 = 4.
    assert frechet_distance(mu1, sigma, mu2, sigma) == pytest.approx(4.0, abs=1e-6)


def test_frechet_distance_shape_mismatch():
    with pytest.raises(ValueError):
        frechet_distance(np.zeros(3), np.eye(3), np.zeros(4), np.eye(4))


def test_fid_requires_two_samples():
    with pytest.raises(ValueError):
        fid_score(np.zeros((1, 4)), np.zeros((10, 4)))


def test_heavy_model_has_lower_fid_than_light(coco_dataset, light_images, heavy_images):
    light_fid = fid_from_images(light_images, coco_dataset.real_features)
    heavy_fid = fid_from_images(heavy_images, coco_dataset.real_features)
    assert heavy_fid < light_fid
    # Both in the paper's ballpark for MS-COCO (FID roughly 15-27).
    assert 12 < heavy_fid < 24
    assert 15 < light_fid < 30


def test_query_aware_mixture_beats_pure_heavy(coco_dataset, light_images, heavy_images,
                                              trained_discriminator):
    """The paper's surprising finding: routing easy queries to the light model
    can yield a *lower* FID than serving everything with the heavy model."""
    conf = trained_discriminator.confidence_batch(light_images)
    threshold = np.quantile(conf, 0.6)
    mixed = [
        heavy_images[i] if conf[i] < threshold else light_images[i]
        for i in range(len(light_images))
    ]
    mixed_fid = fid_from_images(mixed, coco_dataset.real_features)
    heavy_fid = fid_from_images(heavy_images, coco_dataset.real_features)
    assert mixed_fid < heavy_fid + 0.5


def test_windowed_fid_shapes_and_nan_handling():
    rng = np.random.default_rng(0)
    real = rng.normal(size=(500, 4))
    times = np.linspace(0, 100, 300)
    feats = rng.normal(size=(300, 4))
    centers, values = windowed_fid(times, feats, real, window=20.0, horizon=100.0)
    assert len(centers) == len(values) == 5
    assert np.isfinite(values).all()


def test_windowed_fid_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        windowed_fid([0.0], rng.normal(size=(2, 4)), rng.normal(size=(5, 4)), 10.0, 100.0)
    with pytest.raises(ValueError):
        windowed_fid([0.0], rng.normal(size=(1, 4)), rng.normal(size=(5, 4)), 0.0, 100.0)
