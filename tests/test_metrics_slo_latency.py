"""Tests for SLO accounting and latency statistics."""

import numpy as np
import pytest

from repro.metrics.latency import LatencyStats, percentile
from repro.metrics.slo import SLOReport, SLOTracker, violation_ratio


def test_tracker_counts_on_time_late_and_dropped():
    tracker = SLOTracker(slo=5.0)
    a = tracker.arrive(0.0)
    b = tracker.arrive(1.0)
    c = tracker.arrive(2.0)
    assert tracker.complete(a, 3.0) is True
    assert tracker.complete(b, 10.0) is False
    tracker.drop(c)
    report = tracker.report()
    assert report.total == 3
    assert report.completed == 2
    assert report.violated == 1
    assert report.dropped == 1
    assert report.violation_ratio == pytest.approx(2 / 3)
    assert report.goodput_ratio == pytest.approx(1 / 3)


def test_tracker_per_query_slo_override():
    tracker = SLOTracker(slo=5.0)
    idx = tracker.arrive(0.0, slo=1.0)
    assert tracker.complete(idx, 2.0) is False


def test_tracker_window_report():
    tracker = SLOTracker(slo=1.0)
    early = tracker.arrive(0.0)
    late = tracker.arrive(100.0)
    tracker.complete(early, 0.5)
    tracker.complete(late, 105.0)
    report = tracker.report(window=(0.0, 50.0))
    assert report.total == 1 and report.violated == 0


def test_tracker_invalid_transitions():
    tracker = SLOTracker(slo=1.0)
    idx = tracker.arrive(0.0)
    tracker.complete(idx, 0.5)
    with pytest.raises(ValueError):
        tracker.drop(idx)
    other = tracker.arrive(0.0)
    tracker.drop(other)
    with pytest.raises(ValueError):
        tracker.complete(other, 1.0)


def test_tracker_timeseries_and_latencies():
    tracker = SLOTracker(slo=1.0)
    for t in range(10):
        idx = tracker.arrive(float(t))
        tracker.complete(idx, float(t) + (2.0 if t >= 5 else 0.5))
    centers, ratios = tracker.timeseries(window=5.0, horizon=10.0)
    assert len(centers) == len(ratios) == 2
    assert ratios[0] == pytest.approx(0.0)
    assert ratios[1] == pytest.approx(1.0)
    assert len(tracker.latencies()) == 10


def test_slo_report_validation():
    with pytest.raises(ValueError):
        SLOReport(total=1, completed=2, violated=0, dropped=0)
    with pytest.raises(ValueError):
        SLOReport(total=-1, completed=0, violated=0, dropped=0)
    empty = SLOReport(total=0, completed=0, violated=0, dropped=0)
    assert empty.violation_ratio == 0.0


def test_violation_ratio_function():
    assert violation_ratio([1.0, 2.0, 6.0], slo=5.0) == pytest.approx(1 / 3)
    assert violation_ratio([1.0], slo=5.0, dropped=1) == pytest.approx(0.5)
    assert violation_ratio([], slo=5.0) == 0.0
    with pytest.raises(ValueError):
        violation_ratio([1.0], slo=0.0)
    with pytest.raises(ValueError):
        violation_ratio([1.0], slo=1.0, dropped=-1)


def test_tracker_invalid_slo():
    with pytest.raises(ValueError):
        SLOTracker(slo=0.0)


def test_latency_stats_summary():
    stats = LatencyStats.from_latencies(np.linspace(0.1, 1.0, 100))
    assert stats.count == 100
    assert stats.p50 < stats.p95 < stats.p99 <= stats.maximum
    assert stats.mean == pytest.approx(0.55, abs=0.01)
    assert "p95" in str(stats)


def test_latency_stats_empty_and_invalid():
    empty = LatencyStats.from_latencies([])
    assert empty.count == 0 and np.isnan(empty.mean)
    assert str(empty) == "LatencyStats(empty)"
    with pytest.raises(ValueError):
        LatencyStats.from_latencies([-1.0])


def test_percentile_helper():
    assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)
    assert np.isnan(percentile([], 50))
    with pytest.raises(ValueError):
        percentile([1.0], 150)
