"""Sharded execution: determinism gates, routing, topology, column merging.

The tentpole guarantee of the shard supervisor is that ``shards=N`` is a pure
wall-clock knob: sharded and serial runs of the same cell produce byte-identical
summaries.  The determinism tests here are the gate; they carry an
``xdist_group`` marker so a parallel CI runner keeps them on one worker.
"""

import numpy as np
import pytest

from repro.core.config import fleet_from_counts
from repro.core.geo import (
    GEO_TOPOLOGIES,
    GeoRouter,
    GeoTopology,
    RegionSpec,
    get_topology,
    parse_geo,
    sample_origins,
)
from repro.core.results import ColumnStore
from repro.core.sharding import (
    ShardSupervisor,
    build_region_systems,
    default_shards,
    region_seed,
    run_sharded,
)
from repro.core.system import build_diffserve_system
from repro.runner.executor import canonical_summaries_json
from repro.workloads import make_workload

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


def small_system(**overrides):
    defaults = dict(num_workers=4, dataset_size=100, seed=3)
    defaults.update(overrides)
    return build_diffserve_system(**defaults)


def small_workload():
    return make_workload("static", duration=40.0, qps=6.0, seed=3)


def two_region_topology() -> GeoTopology:
    return GeoTopology(
        regions=(
            RegionSpec(name="us", fleet=fleet_from_counts({"a100": 4}), rtt_s=0.01, weight=1.2),
            RegionSpec(name="eu", fleet=fleet_from_counts({"a100": 4}), rtt_s=0.02, weight=1.0),
        )
    )


# ----------------------------------------------------------------- determinism
@pytest.mark.xdist_group("sharding-determinism")
def test_plain_run_equals_single_region_sharded_byte_identical():
    """The degenerate zero-RTT single-region path is bit-for-bit serial."""
    serial = small_system().run(small_workload())
    sharded = run_sharded(small_system(), small_workload())
    assert canonical_summaries_json({"s": sharded.summary()}) == canonical_summaries_json(
        {"s": serial.summary()}
    )
    assert sharded.total_queries == serial.total_queries


@pytest.mark.xdist_group("sharding-determinism")
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_equals_serial_byte_identical(shards):
    """The acceptance gate: shards=N matches shards=1 byte-for-byte."""
    topology = two_region_topology()
    reference = run_sharded(small_system(), small_workload(), topology=topology, shards=1)
    sharded = run_sharded(small_system(), small_workload(), topology=topology, shards=shards)
    assert canonical_summaries_json({"s": sharded.summary()}) == canonical_summaries_json(
        {"s": reference.summary()}
    )


@pytest.mark.xdist_group("sharding-determinism")
def test_supervisor_exposes_identical_region_results_and_live_summaries():
    topology = two_region_topology()
    runs = []
    for shards in (1, 2):
        supervisor = ShardSupervisor(template=small_system(), topology=topology, shards=shards)
        merged = supervisor.run(small_workload())
        runs.append((supervisor, merged))
    inline, procs = runs
    assert set(inline[0].region_results) == {"eu", "us"}
    for name in ("eu", "us"):
        assert canonical_summaries_json(
            {"r": inline[0].region_results[name].summary()}
        ) == canonical_summaries_json({"r": procs[0].region_results[name].summary()})
    assert inline[0].spilled_queries == procs[0].spilled_queries
    assert len(inline[0].live_summaries) == len(procs[0].live_summaries)
    for a, b in zip(inline[0].live_summaries, procs[0].live_summaries):
        assert canonical_summaries_json({"e": a}) == canonical_summaries_json({"e": b})
    # Regions cover the whole trace between them.
    region_total = sum(inline[0].region_results[n].total_queries for n in ("eu", "us"))
    assert region_total == inline[1].total_queries


def test_live_summary_counts_match_final_summary():
    """The last barrier's merged live view agrees with the exact final result."""
    supervisor = ShardSupervisor(
        template=small_system(), topology=two_region_topology(), shards=1
    )
    merged = supervisor.run(small_workload())
    last = supervisor.live_summaries[-1]
    final = merged.summary()
    assert last["total_queries"] == final["total_queries"]
    assert last["completed"] == final["completed"]
    assert last["slo_violation_ratio"] == pytest.approx(final["slo_violation_ratio"])
    assert last["fid"] == pytest.approx(final["fid"])


# ----------------------------------------------------------------- region seeds
def test_region_seed_rule():
    assert region_seed(7, "main", 1) == 7  # single region: serial path untouched
    a = region_seed(7, "us", 2)
    b = region_seed(7, "eu", 2)
    assert a != b != 7
    assert a == region_seed(7, "us", 2)  # process-independent and stable
    assert a != region_seed(8, "us", 2)


def test_region_systems_are_isolated_and_scaled():
    topology = two_region_topology()
    template = small_system()
    systems = build_region_systems(template, topology)
    assert list(systems) == ["eu", "us"]  # canonical name order
    assert systems["us"].policy is not template.policy
    assert systems["us"].policy is not systems["eu"].policy
    assert systems["us"].config.fleet == topology.region("us").fleet
    us_share = 1.2 / 2.2
    assert systems["us"].initial_demand == pytest.approx(template.initial_demand * us_share)


# --------------------------------------------------------------------- routing
def router_topology():
    return GeoTopology(
        regions=(
            RegionSpec(name="a", fleet=fleet_from_counts({"a100": 2}), rtt_s=0.01),
            RegionSpec(name="b", fleet=fleet_from_counts({"a100": 2}), rtt_s=0.02),
            RegionSpec(name="c", fleet=fleet_from_counts({"a100": 2}), rtt_s=0.03),
        )
    )


def test_router_prefers_origin_until_threshold():
    topology = router_topology()
    router = GeoRouter(topology, spill_threshold=2.0)
    origin = topology.region("a")
    decisions = [router.route(origin) for _ in range(4)]
    assert all(d.region == "a" and not d.spilled for d in decisions)
    assert all(d.network_delay_s == pytest.approx(0.01) for d in decisions)
    # backlog/capacity = 4/2 == threshold: still not strictly above, no spill.
    assert router.route(origin).region == "a"
    # One more pushes the origin over; the spill pays both round-trips.
    spilled = router.route(origin)
    assert spilled.spilled and spilled.region != "a"
    assert spilled.network_delay_s == pytest.approx(
        0.01 + topology.region(spilled.region).rtt_s
    )
    assert router.spilled == 1


def test_router_spill_target_is_deterministic_and_rtt_penalised():
    topology = router_topology()
    # With no rtt penalty the emptiest region wins; ties break canonical order.
    router = GeoRouter(topology, spill_threshold=0.5, rtt_penalty=0.0)
    for _ in range(2):
        router.route(topology.region("a"))
    assert router.route(topology.region("a")).region == "b"  # b/c tie -> canonical
    # A large penalty keeps even an overloaded origin local.
    expensive = GeoRouter(topology, spill_threshold=0.5, rtt_penalty=1e6)
    for _ in range(2):
        expensive.route(topology.region("a"))
    assert not expensive.route(topology.region("a")).spilled


def test_router_observe_shrinks_backlog():
    topology = router_topology()
    router = GeoRouter(topology, spill_threshold=1.0)
    origin = topology.region("a")
    for _ in range(3):
        router.route(origin)
    assert router.loads["a"].backlog == 3
    router.observe("a", completed=2, dropped=1)
    assert router.loads["a"].backlog == 0
    assert not router.route(origin).spilled


def test_router_rejects_bad_tuning():
    with pytest.raises(ValueError):
        GeoRouter(router_topology(), spill_threshold=0.0)
    with pytest.raises(ValueError):
        GeoRouter(router_topology(), rtt_penalty=-1.0)


# -------------------------------------------------------------------- topology
def test_topology_is_canonically_ordered_and_validated():
    topology = two_region_topology()
    assert topology.names == ("eu", "us")
    assert topology.total_workers == 8
    assert topology.region("us").weight == 1.2
    with pytest.raises(KeyError):
        topology.region("mars")
    with pytest.raises(ValueError):
        GeoTopology(regions=())
    with pytest.raises(ValueError):
        GeoTopology(regions=(topology.regions[0], topology.regions[0]))
    with pytest.raises(ValueError):
        RegionSpec(name="x", fleet=fleet_from_counts({"a100": 1}), rtt_s=-0.1)
    with pytest.raises(ValueError):
        RegionSpec(name="x", fleet=fleet_from_counts({"a100": 1}), weight=0.0)


def test_topology_token_is_order_independent():
    a, b = two_region_topology().regions
    assert GeoTopology(regions=(a, b)).token() == GeoTopology(regions=(b, a)).token()


def test_catalog_topologies_are_well_formed():
    for name in ("single", "us-eu", "global-4", "global-8"):
        topology = get_topology(name)
        assert topology.total_workers > 0
        assert topology.total_capacity_units > 0
    assert len(GEO_TOPOLOGIES["global-8"]) == 8
    with pytest.raises(KeyError):
        get_topology("atlantis")


def test_parse_geo_catalog_json_and_errors():
    assert parse_geo(None) is None
    assert parse_geo("  ") is None
    assert parse_geo("us-eu") is get_topology("us-eu")
    parsed = parse_geo(
        '{"us": {"fleet": {"a100": 4}, "rtt_ms": 15}, "eu": {"fleet": {"l4": 8}, "weight": 0.5}}'
    )
    assert parsed.names == ("eu", "us")
    assert parsed.region("us").rtt_s == pytest.approx(0.015)
    assert parsed.region("eu").weight == 0.5
    for bad in (
        "atlantis",
        "{not json",
        "[]",
        '{"us": 3}',
        '{"us": {"fleet": {}}}',
        '{"us": {"fleet": {"a100": 4}, "color": "red"}}',
        '{"us": {"fleet": {"a100": 4}, "rtt_ms": true}}',
        '{"us": {"fleet": {"warp-drive": 4}}}',
    ):
        with pytest.raises(ValueError):
            parse_geo(bad)


def test_sample_origins_deterministic_and_weighted():
    topology = two_region_topology()
    rng_a = np.random.default_rng(11)
    rng_b = np.random.default_rng(11)
    a = sample_origins(topology, 2000, rng_a)
    b = sample_origins(topology, 2000, rng_b)
    assert np.array_equal(a, b)
    # us (index 1 in canonical eu/us order) carries weight 1.2 of 2.2.
    assert a.mean() == pytest.approx(1.2 / 2.2, abs=0.05)
    single = GeoTopology(regions=(two_region_topology().regions[0],))
    assert np.array_equal(sample_origins(single, 5, rng_a), np.zeros(5))


# -------------------------------------------------------------- column merging
def _random_records(rng, n, start_id=0):
    from repro.core.query import Query, QueryRecord, QueryStage

    records = []
    for i in range(n):
        query = Query(
            query_id=start_id + i,
            arrival_time=float(rng.uniform(0, 100)),
            prompt=f"p{start_id + i}",
            difficulty=float(rng.uniform(0, 1)),
            slo=4.0,
        )
        dropped = bool(rng.uniform() < 0.2)
        stage = (
            QueryStage.DROPPED
            if dropped
            else (QueryStage.LIGHT if rng.uniform() < 0.7 else QueryStage.HEAVY)
        )
        records.append(
            QueryRecord(
                query=query,
                stage=stage,
                completion_time=(
                    None if dropped else query.arrival_time + float(rng.uniform(0.1, 3.0))
                ),
                quality=None if dropped else float(rng.uniform(0, 1)),
                confidence=float(rng.uniform(0, 1)),
                deferred=stage == QueryStage.HEAVY,
                features=None if dropped else rng.normal(size=4),
            )
        )
    return records


def test_column_store_concat_matches_from_records():
    rng = np.random.default_rng(5)
    chunks = [_random_records(rng, n, start_id=s) for n, s in ((7, 0), (0, 7), (13, 7), (4, 20))]
    whole = ColumnStore.from_records([r for chunk in chunks for r in chunk], 4)
    merged = ColumnStore.concat([ColumnStore.from_records(c, 4) for c in chunks], 4)
    assert len(merged) == len(whole)
    for column in ("arrival", "deadline", "completion", "quality", "confidence"):
        assert np.array_equal(getattr(merged, column), getattr(whole, column), equal_nan=True)
    assert np.array_equal(merged.stage, whole.stage)
    assert np.array_equal(merged.deferred, whole.deferred)
    assert np.array_equal(merged.feature_index, whole.feature_index)
    assert np.array_equal(merged.features, whole.features)


def test_column_store_concat_empty_and_single():
    empty = ColumnStore.concat([], 4)
    assert len(empty) == 0 and empty.features.shape == (0, 4)
    rng = np.random.default_rng(6)
    one = ColumnStore.from_records(_random_records(rng, 3), 4)
    assert ColumnStore.concat([one], 4) is one


# ------------------------------------------------------------------ validation
def test_supervisor_rejects_bad_configs():
    with pytest.raises(ValueError):
        ShardSupervisor(template=small_system(), topology=two_region_topology(), shards=0)
    slow = GeoTopology(
        regions=(
            RegionSpec(name="moon", fleet=fleet_from_counts({"a100": 2}), rtt_s=30.0),
        )
    )
    with pytest.raises(ValueError):
        ShardSupervisor(template=small_system(), topology=slow)


def test_default_shards_is_sane():
    assert 1 <= default_shards() <= 8


# ------------------------------------------------------------- shard timing
@pytest.mark.xdist_group("sharding-determinism")
def test_supervisor_records_per_shard_timing():
    """Each region reports event-loop telemetry; none of it leaks into summaries."""
    supervisor = ShardSupervisor(
        template=small_system(), topology=two_region_topology(), shards=1
    )
    merged = supervisor.run(small_workload())
    assert set(supervisor.shard_timing) == {"eu", "us"}
    for timing in supervisor.shard_timing.values():
        assert timing["events_fired"] > 0
        assert timing["advance_seconds"] >= 0.0
    assert supervisor.barrier_seconds >= 0.0
    # Wall-clock telemetry never enters the merged (cacheable) summary.
    summary = merged.summary()
    assert "events_fired" not in summary
    assert "advance_seconds" not in summary


@pytest.mark.xdist_group("sharding-determinism")
def test_shard_event_counts_are_deterministic_across_shard_counts():
    """events_fired is simulator state, so it must not depend on the process
    packing — only advance_seconds (wall clock) may differ."""
    counts = []
    for shards in (1, 2):
        supervisor = ShardSupervisor(
            template=small_system(), topology=two_region_topology(), shards=shards
        )
        supervisor.run(small_workload())
        counts.append(
            {name: t["events_fired"] for name, t in supervisor.shard_timing.items()}
        )
    assert counts[0] == counts[1]


def test_shard_timing_report_renders_region_rows():
    from repro.experiments.geo_scale import shard_timing_report
    from repro.experiments.harness import ExperimentScale

    report = shard_timing_report(
        scale=ExperimentScale(dataset_size=60, trace_duration=20.0, num_workers=4),
        duration=15.0,
    )
    assert "Shard event-loop timing" in report
    assert "barrier wait" in report
    for region in ("us", "eu"):
        assert f"\n{region}" in report or report.count(region)


# ------------------------------------------------------------- dead shards
def test_dead_shard_surfaces_one_line_error_instead_of_hanging():
    """A shard worker dying mid-epoch must fail fast with a named error.

    Before the liveness check, the supervisor's blocking ``recv`` would hang
    forever on the dead worker's pipe; now every pipe read polls with a short
    timeout and raises a one-line error naming the dead shard's regions and
    exit code.
    """
    from repro.core.sharding import _ProcessShard

    shard = _ProcessShard({"us": small_system(), "eu": small_system()})
    try:
        shard._process.terminate()
        shard._process.join(timeout=30)
        assert not shard._process.is_alive()
        # Depending on timing the dead worker surfaces either as a liveness
        # failure ("died (exit code N)") or as a closed pipe — both are the
        # same one-line error shape naming the shard's regions and the verb.
        with pytest.raises(
            RuntimeError,
            match=r"shard worker for region\(s\) us, eu "
            r"(died \(exit code -?\d+\)|closed its pipe) "
            r"while the supervisor waited for 'stats'",
        ):
            shard.collect_stats()
    finally:
        shard._conn.close()
        shard._process.join(timeout=30)
