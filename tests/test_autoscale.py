"""Elastic fleets: autoscaling policies, spot pricing, and cost accounting.

Covers the PR 9 tentpole surfaces:

* :class:`ScalePolicy` / :class:`PriceTrace` parsing, validation and
  canonical tokens (equivalent JSON spellings share one runner cache entry);
* the controller's single audited ``set_fleet`` site — growth activates
  pre-provisioned spares, over-growth fails with a one-line error, and a
  worker fenced by a revocation notice can never be re-activated by a
  same-epoch scale-out (the drain/autoscaler race pin);
* scale-to-zero as class omission (``fleet_from_counts(drop_zero=True)``)
  and the pinned one-line errors at the edges;
* time-integrated cost accounting — the ledger conservation property, the
  revocation-cheaper-than-quiet regression, and hypothesis determinism of
  autoscaled runs (repeat and serial vs. sharded, byte-identical).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.autoscaler import (
    SCALE_POLICIES,
    Autoscaler,
    ScalePolicy,
    get_scale_policy,
    parse_autoscale,
)
from repro.core.config import DEVICE_CLASSES, fleet_from_counts
from repro.core.pricing import (
    PRICE_TRACES,
    CostLedger,
    PriceSurge,
    PriceTrace,
    get_price_trace,
    parse_prices,
)
from repro.core.sharding import run_sharded
from repro.core.system import build_diffserve_system
from repro.experiments.harness import ExperimentScale
from repro.faults.plan import get_fault_plan
from repro.runner.spec import ExperimentSpec
from repro.workloads import make_workload

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")

# Hypothesis settings: keep runtimes modest, silence fixture-scope warnings.
_SETTINGS = dict(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def elastic_system(**overrides):
    """A small mixed-fleet system with the autoscaler armed."""
    defaults = dict(
        cascade_name="sdturbo",
        fleet=fleet_from_counts({"a100": 1, "l4": 3}),
        dataset_size=100,
        seed=3,
        replan_epoch=3.0,
        replan_policy="adaptive",
        autoscale=get_scale_policy("cost-aware"),
        prices=get_price_trace("spot-diurnal"),
    )
    defaults.update(overrides)
    return build_diffserve_system(**defaults)


def small_workload(**overrides):
    defaults = dict(kind="flash-crowd", qps=4.0, duration=30.0, seed=3)
    defaults.update(overrides)
    return make_workload(**defaults)


# ------------------------------------------------------------ policy parsing
def test_scale_policy_catalog_and_tokens():
    for name, policy in SCALE_POLICIES.items():
        assert get_scale_policy(name) is policy
        assert policy.token().startswith(policy.kind)
    # cost-aware knobs only appear on cost-aware tokens.
    assert "risk=" in SCALE_POLICIES["cost-aware"].token()
    assert "risk=" not in SCALE_POLICIES["reactive"].token()
    with pytest.raises(KeyError, match="known policies"):
        get_scale_policy("bogus")


def test_parse_autoscale_accepts_named_and_json_forms():
    assert parse_autoscale(None) is None
    assert parse_autoscale("  ") is None
    assert parse_autoscale("reactive") == SCALE_POLICIES["reactive"]
    custom = parse_autoscale('{"kind": "cost-aware", "max_factor": 2.0, "step": 3}')
    assert custom.kind == "cost-aware"
    assert custom.max_factor == 2.0
    assert custom.step == 3


@pytest.mark.parametrize(
    "text",
    [
        "bogus",
        "{not json",
        '{"kind": "sideways"}',
        '{"kind": "reactive", "max_factor": 0.5}',
        '{"kind": "reactive", "step": 0}',
        '{"kind": "reactive", "surprise": 1}',
        '{"kind": "cost-aware", "price_ceiling": -1}',
    ],
)
def test_parse_autoscale_rejects_bad_specs(text):
    with pytest.raises(ValueError):
        parse_autoscale(text)


# ------------------------------------------------------------- price parsing
def test_price_trace_catalog_and_tokens():
    for name, trace in PRICE_TRACES.items():
        assert get_price_trace(name) is trace
    assert PRICE_TRACES["flat"].token() == "od=1"
    storm = PRICE_TRACES["spot-storm"].token()
    assert "spot[a10g+l4+t4]" in storm and "surges[" in storm
    with pytest.raises(KeyError, match="known traces"):
        get_price_trace("bogus")


def test_parse_prices_accepts_named_and_json_forms():
    assert parse_prices(None) is None
    assert parse_prices("") is None
    assert parse_prices("spot-calm") == PRICE_TRACES["spot-calm"]
    custom = parse_prices(
        '{"spot_classes": ["t4", "l4"], "volatility": 0.2,'
        ' "surges": [{"at": 5, "duration": 10, "factor": 2}]}'
    )
    assert custom.spot_classes == ("l4", "t4")  # canonically sorted
    assert custom.surges == (PriceSurge(at=5, duration=10, factor=2),)


@pytest.mark.parametrize(
    "text",
    [
        "bogus",
        "{not json",
        '{"spot_classes": ["b200"]}',
        '{"spot_classes": ["l4", "l4"]}',
        '{"spot_discount": 0}',
        '{"volatility": 1.5}',
        '{"surges": [{"at": -1, "duration": 5}]}',
        '{"surges": [{"at": 1, "duration": 5, "factor": 0.5}]}',
        '{"mystery": 1}',
    ],
)
def test_parse_prices_rejects_bad_specs(text):
    with pytest.raises(ValueError):
        parse_prices(text)


def test_spot_prices_are_deterministic_discounted_and_surge_scaled():
    trace = get_price_trace("spot-storm")
    od = DEVICE_CLASSES["l4"].cost_per_hour
    assert trace.on_demand_price("l4") == od
    assert trace.price("a100", 123.0) == DEVICE_CLASSES["a100"].cost_per_hour
    # Spot stays within the volatility band around the discounted base.
    base = od * trace.spot_discount
    quiet = trace.price("l4", 50.0)  # between the two surges
    assert base * (1 - trace.volatility) <= quiet <= base * (1 + trace.volatility)
    # Inside the first surge window the price multiplies by the factor.
    assert trace.price("l4", 25.0) == pytest.approx(
        trace.price("l4", 25.0 - 0.0), rel=0  # deterministic: identical call
    )
    wave_only = PriceTrace(
        spot_classes=trace.spot_classes,
        spot_discount=trace.spot_discount,
        volatility=trace.volatility,
        period=trace.period,
    )
    assert trace.price("l4", 25.0) == pytest.approx(5.0 * wave_only.price("l4", 25.0))


# --------------------------------------------- token / cache-key equivalence
@given(
    volatility=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    period=st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**16),
    spot=st.lists(st.sampled_from(sorted(DEVICE_CLASSES)), unique=True, max_size=4),
)
@settings(**_SETTINGS)
def test_price_trace_json_spellings_share_one_cache_entry(volatility, period, seed, spot):
    """Equivalent ``--prices`` JSON spellings hash to one runner cache token."""
    import json

    payload = {
        "volatility": volatility,
        "period": period,
        "seed": seed,
        "spot_classes": spot,
    }
    scrambled = {
        "spot_classes": list(reversed(spot)),
        "seed": seed,
        "period": period,
        "volatility": volatility,
    }
    scale = ExperimentScale()
    a = ExperimentSpec(cascade="sdturbo", scale=scale, prices=json.dumps(payload))
    b = ExperimentSpec(cascade="sdturbo", scale=scale, prices=json.dumps(scrambled))
    assert parse_prices(json.dumps(payload)).token() == parse_prices(json.dumps(scrambled)).token()
    assert a.token() == b.token()


def test_spec_token_includes_autoscale_and_prices():
    scale = ExperimentScale()
    bare = ExperimentSpec(cascade="sdturbo", scale=scale)
    assert "autoscale(" not in bare.token() and "prices(" not in bare.token()
    spec = ExperimentSpec(cascade="sdturbo", scale=scale, autoscale="reactive", prices="spot-calm")
    assert f"autoscale({SCALE_POLICIES['reactive'].token()})" in spec.token()
    assert f"prices({PRICE_TRACES['spot-calm'].token()})" in spec.token()
    # Named and JSON spellings of the same policy share one cache entry.
    json_spec = ExperimentSpec(
        cascade="sdturbo",
        scale=scale,
        autoscale='{"kind": "reactive", "max_factor": 1.5, "step": 2}',
        prices="spot-calm",
    )
    assert json_spec.token() == spec.token()
    with pytest.raises(ValueError):
        ExperimentSpec(cascade="sdturbo", scale=scale, autoscale="not-a-policy")
    with pytest.raises(ValueError):
        ExperimentSpec(cascade="sdturbo", scale=scale, prices="not-a-trace")


# --------------------------------------------------------------- cost ledger
@given(
    times=st.lists(
        st.floats(min_value=0.1, max_value=500.0, allow_nan=False),
        min_size=1,
        max_size=12,
    ),
    counts=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=12),
)
@settings(**_SETTINGS)
def test_cost_ledger_conservation(times, counts):
    """Sum of interval charges equals the integral of the active fleet rate."""
    from repro.core.pricing import SECONDS_PER_HOUR

    ledger = CostLedger()
    now = 0.0
    ledger.transition(fleet_from_counts({"a100": 1}), now)
    expected = 0.0
    rate = fleet_from_counts({"a100": 1}).total_cost
    for dt, count in zip(times, counts):
        nxt = now + dt
        fleet = fleet_from_counts({"a100": count})
        expected += rate * (nxt - now) / SECONDS_PER_HOUR
        ledger.transition(fleet, nxt)
        now, rate = nxt, fleet.total_cost
    assert ledger.charged == pytest.approx(expected)
    assert sum(
        r * (e - s) / SECONDS_PER_HOUR for s, e, r, _ in ledger.intervals
    ) == pytest.approx(expected)
    # total_at extrapolates the open tail at the current rate, non-mutating.
    assert ledger.total_at(now + 3600.0) == pytest.approx(expected + rate)
    assert ledger.total_at(now) == pytest.approx(expected)


def test_cost_ledger_observe_resamples_spot_prices():
    trace = get_price_trace("spot-diurnal")
    fleet = fleet_from_counts({"l4": 2})
    ledger = CostLedger(trace)
    ledger.transition(fleet, 0.0)
    for t in (30.0, 60.0, 90.0):
        ledger.observe(t)
    ledger.observe(120.0)
    rates = {interval[2] for interval in ledger.intervals}
    assert len(rates) > 1, "diurnal spot prices must re-rate the meter"
    # Without a trace, observe() is a no-op and one interval per transition.
    flat = CostLedger()
    flat.transition(fleet, 0.0)
    flat.observe(50.0)
    assert flat.intervals == []
    assert flat.total_at(3600.0) == pytest.approx(fleet.total_cost)


# ------------------------------------------------------------- scale-to-zero
def test_fleet_from_counts_drop_zero_omits_classes():
    fleet = fleet_from_counts({"a100": 2, "l4": 0, "t4": 3}, drop_zero=True)
    assert fleet.as_counts() == {"a100": 2, "t4": 3}
    assert fleet.count_for("l4") == 0
    # The MILP lowering solves a single-class remainder fine.
    with pytest.raises(ValueError, match="at least one device class"):
        fleet_from_counts({"a100": 0, "l4": 0}, drop_zero=True)
    # Without drop_zero the legacy pinned error stands.
    with pytest.raises(ValueError, match="count must be >= 1"):
        fleet_from_counts({"a100": 0})


def test_scaled_to_zero_fleet_still_plans_and_serves():
    """Scale-to-zero leaves a smaller fleet the MILP must solve, not crash."""
    system = elastic_system(
        fleet=fleet_from_counts({"a100": 2}),
        autoscale=ScalePolicy(kind="reactive", min_workers=1, step=1),
        prices=None,
    )
    summary = system.run(small_workload(qps=1.0, duration=12.0)).summary()
    assert summary["completed"] > 0


# ----------------------------------------------- audited set_fleet + fencing
def test_set_fleet_growth_activates_preprovisioned_spares():
    system = elastic_system(
        fleet=fleet_from_counts({"a100": 2}),
        autoscale=ScalePolicy(kind="reactive", max_factor=2.0, step=2),
        prices=None,
    )
    runtime = system.prepare()
    controller = runtime.controller
    assert controller.built_fleet.as_counts() == {"a100": 4}
    assert controller.active_fleet.as_counts() == {"a100": 2}
    controller.set_fleet(fleet_from_counts({"a100": 4}), reason="test-grow")
    assert controller.active_fleet.as_counts() == {"a100": 4}
    assert controller.fleet_log[-1][1] == "test-grow"
    # Growth beyond the built pool is a one-line error.
    with pytest.raises(ValueError, match="exceeds the 4 workers built"):
        controller.set_fleet(fleet_from_counts({"a100": 5}), reason="too-far")


def test_fenced_worker_cannot_be_reactivated_by_scale_out():
    """The revocation-drain vs. autoscaler race, pinned.

    Once a spot revocation notice fences a worker, neither a direct
    ``set_fleet`` nor a same-epoch autoscaler proposal may count it again.
    """
    system = elastic_system(
        fleet=fleet_from_counts({"a100": 3}),
        autoscale=ScalePolicy(kind="reactive", max_factor=1.0, step=2, cooldown_epochs=0),
        prices=None,
    )
    runtime = system.prepare()
    controller = runtime.controller
    victim = controller.workers[0]
    controller.fence_worker(victim)
    assert controller.healthy_counts() == {"a100": 2}
    with pytest.raises(ValueError, match="fenced by revocation notices"):
        controller.set_fleet(fleet_from_counts({"a100": 3}), reason="race")
    # The autoscaler sees only unfenced capacity: shrink, then demand a
    # scale-out — the proposal must never exceed the two healthy workers.
    controller.set_fleet(fleet_from_counts({"a100": 2}), reason="drain")
    scaler = Autoscaler(
        ScalePolicy(kind="reactive", max_factor=1.0, step=3, cooldown_epochs=0),
        controller,
    )
    proposal = scaler.evaluate(now=10.0, arrival_rate=100.0, violation_ratio=1.0)
    assert proposal is None or proposal.count_for("a100") <= 2


def test_static_policy_never_scales():
    system = elastic_system(autoscale=get_scale_policy("static"))
    runtime = system.prepare()
    scaler = runtime.replanner.autoscaler
    assert scaler.evaluate(now=3.0, arrival_rate=1e9, violation_ratio=1.0) is None
    assert scaler.decisions == []


def test_autoscale_requires_replan_control_plane():
    with pytest.raises(ValueError, match="replan"):
        build_diffserve_system(
            "sdturbo",
            fleet=fleet_from_counts({"a100": 2}),
            dataset_size=100,
            seed=0,
            autoscale=get_scale_policy("reactive"),
        ).prepare()


# ------------------------------------------------- cost accounting regression
def test_revocation_run_costs_less_than_quiet_twin():
    """Losing a worker to a spot revocation must show up as money saved."""

    def run(faults):
        system = build_diffserve_system(
            "sdturbo",
            fleet=fleet_from_counts({"a100": 4}),
            dataset_size=100,
            seed=3,
            replan_epoch=3.0,
            replan_policy="adaptive",
            faults=faults,
        )
        return system.run(small_workload()).summary()

    quiet = run(get_fault_plan("quiet"))
    revoked = run(get_fault_plan("revocation"))
    assert revoked["fleet_cost"] < quiet["fleet_cost"], (
        "a revocation-shrunk fleet must charge less than its quiet twin"
    )


# --------------------------------------------------------------- determinism
@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_autoscaled_runs_are_deterministic_on_repeat(seed):
    def once():
        system = elastic_system(seed=seed)
        return system.run(small_workload(seed=seed, duration=20.0)).summary()

    assert once() == once()


@pytest.mark.xdist_group("sharding-determinism")
def test_autoscaled_serial_equals_sharded_byte_identical():
    workload = small_workload(duration=20.0)
    serial = elastic_system().run(workload).summary()
    sharded = run_sharded(elastic_system(), workload, shards=2).summary()
    assert serial == sharded
    assert "fleet_cost" in serial


# ------------------------------------------- chunked feeding / profiler gates
def test_chunk_size_and_profiler_are_summary_neutral_autoscaled():
    """Arrival chunking and the profiler never perturb an autoscaled run.

    ``arrival_chunk`` only changes when queries are *allocated* and
    ``profile=True`` only counts callbacks, so every combination must be
    byte-identical to the reference run — including the elastic control
    plane's scale decisions, which feed off observed arrivals.
    """
    import dataclasses

    from repro.runner.executor import canonical_summaries_json

    workload = small_workload()

    def run(**fields):
        system = dataclasses.replace(elastic_system(), **fields)
        return canonical_summaries_json({"s": system.run(workload).summary()})

    reference = run()
    assert run(arrival_chunk=1) == reference
    assert run(arrival_chunk=7) == reference
    assert run(profile=True) == reference
