"""Tests for model variants, quality models and the zoo/cascade registry."""

import pytest

from repro.models.profiles import LatencyProfile
from repro.models.variants import ModelVariant, QualityModel
from repro.models.zoo import CASCADES, MODEL_ZOO, CascadeSpec, get_cascade, get_variant


def test_zoo_contains_paper_variants():
    for name in ("sd-turbo", "sdxs", "sd-v1.5", "sdxl-lightning", "sdxl"):
        assert name in MODEL_ZOO


def test_paper_latencies_match_section_4_1():
    # Per-image latencies reported in the paper (batch size 1), within 20%.
    assert get_variant("sd-turbo").execution_latency(1) == pytest.approx(0.1, rel=0.3)
    assert get_variant("sdxs").execution_latency(1) == pytest.approx(0.05, rel=0.3)
    assert get_variant("sd-v1.5").execution_latency(1) == pytest.approx(1.78, rel=0.1)
    assert get_variant("sdxl-lightning").execution_latency(1) == pytest.approx(0.5, rel=0.1)
    assert get_variant("sdxl").execution_latency(1) == pytest.approx(6.0, rel=0.1)


def test_cascades_match_paper_configuration():
    c1 = get_cascade("sdturbo")
    assert c1.light.name == "sd-turbo" and c1.heavy.name == "sd-v1.5" and c1.slo == 5.0
    c2 = get_cascade("sdxs")
    assert c2.light.name == "sdxs" and c2.heavy.name == "sd-v1.5"
    c3 = get_cascade("sdxlltn")
    assert c3.light.name == "sdxl-lightning" and c3.heavy.name == "sdxl" and c3.slo == 15.0
    assert c3.dataset == "diffusiondb"


def test_cascade_aliases():
    assert get_cascade("cascade1") is CASCADES["sdturbo"]
    assert get_cascade("Cascade-2") is CASCADES["sdxs"]
    assert get_cascade("cascade_3") is CASCADES["sdxlltn"]


def test_unknown_variant_and_cascade_raise():
    with pytest.raises(KeyError):
        get_variant("nonexistent")
    with pytest.raises(KeyError):
        get_cascade("nonexistent")


def test_light_models_are_faster_but_lower_quality():
    for cascade in CASCADES.values():
        assert cascade.light.execution_latency(1) < cascade.heavy.execution_latency(1)
        assert cascade.light.quality.base_quality <= cascade.heavy.quality.base_quality
        assert (
            cascade.light.quality.difficulty_sensitivity
            > cascade.heavy.quality.difficulty_sensitivity
        )


def test_quality_model_mean_quality_decreases_with_difficulty():
    qm = QualityModel(base_quality=0.9, difficulty_sensitivity=0.4)
    assert qm.mean_quality(0.0) > qm.mean_quality(0.5) > qm.mean_quality(1.0)


def test_quality_model_validation():
    with pytest.raises(ValueError):
        QualityModel(base_quality=0.0, difficulty_sensitivity=0.1)
    with pytest.raises(ValueError):
        QualityModel(base_quality=0.9, difficulty_sensitivity=-0.1)
    with pytest.raises(ValueError):
        QualityModel(base_quality=0.9, difficulty_sensitivity=0.1, diversity=0.0)


def test_variant_with_steps_scales_latency():
    heavy = get_variant("sd-v1.5")
    faster = heavy.with_steps(25)
    assert faster.steps == 25
    assert faster.execution_latency(1) == pytest.approx(heavy.execution_latency(1) / 2, rel=0.1)
    assert faster.name != heavy.name


def test_variant_validation():
    with pytest.raises(ValueError):
        ModelVariant(
            name="bad",
            display_name="bad",
            steps=0,
            resolution=512,
            latency=LatencyProfile(per_image=1.0),
            quality=QualityModel(base_quality=0.9, difficulty_sensitivity=0.1),
        )
    with pytest.raises(ValueError):
        ModelVariant(
            name="bad",
            display_name="bad",
            steps=1,
            resolution=300,
            latency=LatencyProfile(per_image=1.0),
            quality=QualityModel(base_quality=0.9, difficulty_sensitivity=0.1),
        )


def test_cascade_spec_rejects_slow_light_model():
    heavy = get_variant("sd-v1.5")
    light = get_variant("sd-turbo")
    with pytest.raises(ValueError):
        CascadeSpec(name="bad", light=heavy, heavy=light, slo=5.0)
    with pytest.raises(ValueError):
        CascadeSpec(name="bad", light=light, heavy=heavy, slo=0.0)


def test_cascade_variants_property():
    c1 = get_cascade("sdturbo")
    assert c1.variants == (c1.light, c1.heavy)
