"""Tests for the discriminator training pipeline and the deferral profile."""

import numpy as np
import pytest

from repro.discriminators.deferral import DeferralProfile
from repro.discriminators.training import DiscriminatorTrainer, TrainingConfig


def test_training_config_validation():
    with pytest.raises(ValueError):
        TrainingConfig(real_source="synthetic")
    with pytest.raises(ValueError):
        TrainingConfig(n_train=5)


def test_trainer_produces_accurate_real_vs_fake_classifier(coco_dataset, cascade1):
    trainer = DiscriminatorTrainer(coco_dataset, cascade1.light, cascade1.heavy)
    result = trainer.train(TrainingConfig(n_train=200, seed=0))
    assert result.train_accuracy > 0.9
    assert result.quality_correlation > 0.05
    assert result.discriminator.latency_s == pytest.approx(0.010)


def test_ground_truth_training_beats_fake_training(coco_dataset, cascade1):
    """Figure 7: EfficientNet trained on ground-truth real images gives a more
    quality-aligned confidence than training against heavy-model outputs."""
    trainer = DiscriminatorTrainer(coco_dataset, cascade1.light, cascade1.heavy)
    gt = trainer.train(TrainingConfig(real_source="ground-truth", n_train=250, seed=0))
    fake = trainer.train(TrainingConfig(real_source="heavy-model", n_train=250, seed=0))
    assert gt.quality_correlation > fake.quality_correlation - 0.05


def test_training_is_reproducible(coco_dataset, cascade1, light_images):
    trainer = DiscriminatorTrainer(coco_dataset, cascade1.light, cascade1.heavy)
    a = trainer.train(TrainingConfig(n_train=150, seed=3)).discriminator
    b = trainer.train(TrainingConfig(n_train=150, seed=3)).discriminator
    assert np.allclose(
        a.confidence_batch(light_images[:50]), b.confidence_batch(light_images[:50])
    )


def test_architecture_choice_respected(coco_dataset, cascade1):
    trainer = DiscriminatorTrainer(coco_dataset, cascade1.light, cascade1.heavy)
    resnet = trainer.train(TrainingConfig(architecture="resnet-34", n_train=150, seed=0))
    assert resnet.discriminator.architecture.name == "resnet-34"
    assert resnet.discriminator.latency_s == pytest.approx(0.002)


# --------------------------------------------------------------------- deferral
def test_deferral_profile_monotone(deferral_profile):
    thresholds = np.linspace(0, 1, 21)
    fractions = deferral_profile.fractions(thresholds)
    assert np.all(np.diff(fractions) >= -1e-12)
    assert fractions[0] == pytest.approx(0.0)
    assert fractions[-1] <= 1.0


def test_deferral_profile_inverse_consistency(deferral_profile):
    for target in (0.1, 0.3, 0.5, 0.8):
        threshold = deferral_profile.threshold_for_fraction(target)
        achieved = deferral_profile.fraction(threshold)
        assert achieved <= target + 0.05


def test_deferral_profile_input_validation(deferral_profile):
    with pytest.raises(ValueError):
        deferral_profile.fraction(1.5)
    with pytest.raises(ValueError):
        deferral_profile.threshold_for_fraction(-0.1)
    with pytest.raises(ValueError):
        DeferralProfile(confidences=np.array([]))
    with pytest.raises(ValueError):
        DeferralProfile(confidences=np.array([0.5, 1.2]))


def test_deferral_profile_online_update_shifts_fraction(trained_discriminator, coco_dataset,
                                                        cascade1):
    profile = DeferralProfile.profile(
        trained_discriminator, coco_dataset, cascade1.light, n_calibration=200, seed=0
    )
    base = profile.fraction(0.5)
    # Observe a consistently higher deferral rate than predicted at t=0.5.
    for _ in range(5):
        profile.update_online(0.5, min(base + 0.2, 1.0))
    assert profile.fraction(0.5) > base
    with pytest.raises(ValueError):
        profile.update_online(0.5, 1.5)


def test_deferral_profile_from_oracle_matches_quantiles(coco_dataset, cascade1):
    from repro.discriminators.heuristics import OracleDiscriminator

    profile = DeferralProfile.profile(
        OracleDiscriminator(), coco_dataset, cascade1.light, n_calibration=300, seed=0
    )
    # Half the images should fall below the median confidence.
    median = profile.threshold_for_fraction(0.5)
    assert profile.fraction(median) == pytest.approx(0.5, abs=0.05)
