"""Tests for the simulation driver and actors."""

import pytest

from repro.simulator.simulation import Actor, Simulator


class Ticker(Actor):
    """Schedules itself every `period` seconds and counts ticks."""

    def __init__(self, sim, period):
        super().__init__(sim, name="ticker")
        self.period = period
        self.ticks = 0
        self.started = False
        self.finished = False

    def start(self):
        self.started = True
        self.sim.schedule(self.period, self._tick)

    def _tick(self):
        self.ticks += 1
        self.sim.schedule(self.period, self._tick)

    def finish(self):
        self.finished = True


def test_run_until_advances_clock_and_fires_events():
    sim = Simulator(seed=0)
    ticker = Ticker(sim, period=1.0)
    end = sim.run(until=10.5)
    assert end == pytest.approx(10.5)
    assert ticker.ticks == 10
    assert ticker.started and ticker.finished


def test_events_fire_in_order_and_now_is_monotone():
    sim = Simulator(seed=0)
    seen = []
    sim.schedule(3.0, lambda: seen.append(sim.now))
    sim.schedule(1.0, lambda: seen.append(sim.now))
    sim.schedule(2.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.0, 2.0, 3.0]


def test_schedule_at_rejects_past():
    sim = Simulator(seed=0)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_schedule_negative_delay_rejected():
    sim = Simulator(seed=0)
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_stop_halts_run():
    sim = Simulator(seed=0)
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run(until=10)
    assert fired == [1]


def test_max_events_limits_processing():
    sim = Simulator(seed=0)
    fired = []
    for i in range(10):
        sim.schedule(i + 1.0, lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert len(fired) == 3


def test_cancel_scheduled_event():
    sim = Simulator(seed=0)
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_run_without_events_respects_until():
    sim = Simulator(seed=0)
    end = sim.run(until=42.0)
    assert end == pytest.approx(42.0)


def test_events_fired_counter():
    sim = Simulator(seed=0)
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_fired == 5


def test_nested_scheduling_from_callbacks():
    sim = Simulator(seed=0)
    order = []

    def outer():
        order.append("outer")
        sim.schedule(0.5, lambda: order.append("inner"))

    sim.schedule(1.0, outer)
    sim.schedule(2.0, lambda: order.append("later"))
    sim.run()
    assert order == ["outer", "inner", "later"]


# ----------------------------------------------- run(until=..., max_events=...)
def test_max_events_with_until_stops_at_whichever_comes_first():
    sim = Simulator(seed=0)
    fired = []
    for i in range(10):
        sim.schedule(i + 1.0, lambda i=i: fired.append(i))
    # max_events binds first: only 3 of the 5 events before until=5 fire.
    sim.run(until=5.0, max_events=3)
    assert fired == [0, 1, 2]
    assert sim.now == pytest.approx(3.0)
    # until binds next: the remaining pre-5s events fire, clock parks at 5.
    sim.run(until=5.0, max_events=100)
    assert fired == [0, 1, 2, 3, 4]
    assert sim.now == pytest.approx(5.0)


def test_run_resumes_after_max_events_without_refiring():
    sim = Simulator(seed=0)
    fired = []
    for i in range(6):
        sim.schedule(i + 1.0, lambda i=i: fired.append(i))
    sim.run(max_events=2)
    sim.run(max_events=2)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.events_fired == 6


def test_max_events_is_per_run_not_cumulative():
    sim = Simulator(seed=0)
    for i in range(4):
        sim.schedule(i + 1.0, lambda: None)
    sim.run(max_events=3)
    assert sim.events_fired == 3
    sim.run(max_events=3)  # a fresh budget fires the remaining event
    assert sim.events_fired == 4


def test_until_exactly_on_event_time_fires_the_event():
    sim = Simulator(seed=0)
    fired = []
    sim.schedule(5.0, lambda: fired.append("at-5"))
    sim.run(until=5.0)
    assert fired == ["at-5"]
    assert sim.now == pytest.approx(5.0)
