"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.demand import DemandEstimator
from repro.core.queueing import LittlesLawModel
from repro.discriminators.deferral import DeferralProfile
from repro.metrics.accumulators import P2Quantile
from repro.metrics.fid import fid_score, frechet_distance
from repro.metrics.pareto import ParetoPoint, is_pareto_dominated, pareto_frontier
from repro.metrics.slo import violation_ratio
from repro.milp.branch_and_bound import BranchAndBoundSolver
from repro.milp.exhaustive import ExhaustiveSolver
from repro.milp.problem import MILPProblem
from repro.models.profiles import LatencyProfile
from repro.simulator.events import EventQueue

# Hypothesis settings: keep runtimes modest, silence fixture-scope warnings.
_SETTINGS = dict(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------- event queue
@given(times=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(**_SETTINGS)
def test_event_queue_pops_in_nondecreasing_time_order(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while q:
        popped.append(q.pop().time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


@given(
    times=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=30),
    cancel_idx=st.integers(min_value=0, max_value=29),
)
@settings(**_SETTINGS)
def test_event_queue_cancellation_preserves_rest(times, cancel_idx):
    q = EventQueue()
    events = [q.push(t, lambda: None) for t in times]
    victim = events[cancel_idx % len(events)]
    q.cancel(victim)
    popped = []
    while q:
        popped.append(q.pop())
    assert victim not in popped
    assert len(popped) == len(times) - 1


# -------------------------------------------------------------------- latency
@given(
    per_image=st.floats(min_value=0.01, max_value=10.0),
    gain=st.floats(min_value=0.0, max_value=0.9),
    b=st.sampled_from([1, 2, 4, 8, 16]),
)
@settings(**_SETTINGS)
def test_latency_profile_invariants(per_image, gain, b):
    profile = LatencyProfile(per_image=per_image, batching_gain=gain)
    assert profile.latency(b) > 0
    assert profile.throughput(b) > 0
    if b > 1:
        # Throughput never decreases with batch size; per-batch latency never decreases.
        assert profile.throughput(b) >= profile.throughput(b // 2) - 1e-12
        assert profile.latency(b) >= profile.latency(b // 2) - 1e-12


# ------------------------------------------------------------------------- FID
@given(
    shift=st.floats(min_value=0.0, max_value=3.0),
    dim=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(**_SETTINGS)
def test_fid_nonnegative_and_monotone_in_mean_shift(shift, dim, seed):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(300, dim))
    shifted = base + shift
    fid_same = fid_score(base, base)
    fid_shifted = fid_score(shifted, base)
    assert fid_same == pytest.approx(0.0, abs=1e-6)
    assert fid_shifted >= -1e-9
    assert fid_shifted >= fid_same - 1e-9


@given(
    mu=st.lists(st.floats(min_value=-5, max_value=5), min_size=2, max_size=6),
    scale=st.floats(min_value=0.1, max_value=3.0),
)
@settings(**_SETTINGS)
def test_frechet_distance_identity_and_symmetry(mu, scale):
    mu = np.array(mu)
    sigma = scale * np.eye(len(mu))
    assert frechet_distance(mu, sigma, mu, sigma) == pytest.approx(0.0, abs=1e-8)
    other = np.zeros(len(mu))
    d_ab = frechet_distance(mu, sigma, other, np.eye(len(mu)))
    d_ba = frechet_distance(other, np.eye(len(mu)), mu, sigma)
    assert d_ab == pytest.approx(d_ba, rel=1e-6, abs=1e-8)


# ---------------------------------------------------------------------- pareto
@given(
    points=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100), st.floats(min_value=0, max_value=100)
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(**_SETTINGS)
def test_pareto_frontier_is_nondominated_and_subset(points):
    pts = [ParetoPoint(x, y) for x, y in points]
    frontier = pareto_frontier(pts)
    assert 1 <= len(frontier) <= len(pts)
    for p in frontier:
        assert not is_pareto_dominated(p, pts)
    # Every non-frontier point with unique coordinates is dominated.
    frontier_coords = {(p.x, p.y) for p in frontier}
    for p in pts:
        if (p.x, p.y) not in frontier_coords:
            assert is_pareto_dominated(p, pts)


# -------------------------------------------------------------------- deferral
@given(
    confidences=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=5, max_size=200),
    thresholds=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=10),
)
@settings(**_SETTINGS)
def test_deferral_fraction_monotone_in_threshold(confidences, thresholds):
    profile = DeferralProfile(confidences=np.array(confidences))
    ts = sorted(thresholds)
    fractions = [profile.fraction(t) for t in ts]
    assert all(0.0 <= f <= 1.0 for f in fractions)
    assert all(b >= a - 1e-12 for a, b in zip(fractions, fractions[1:]))


@given(
    confidences=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=10, max_size=200),
    target=st.floats(min_value=0.0, max_value=1.0),
)
@settings(**_SETTINGS)
def test_deferral_inverse_never_exceeds_target(confidences, target):
    profile = DeferralProfile(confidences=np.array(confidences))
    threshold = profile.threshold_for_fraction(target)
    assert 0.0 <= threshold <= 1.0
    assert profile.fraction(threshold) <= target + 1.0 / len(confidences) + 1e-9


# ----------------------------------------------------------------------- demand
@given(
    rates=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50),
    alpha=st.floats(min_value=0.05, max_value=1.0),
)
@settings(**_SETTINGS)
def test_demand_estimate_stays_within_observed_range(rates, alpha):
    est = DemandEstimator(alpha=alpha)
    for arrivals in rates:
        est.observe(arrivals, 10.0)
    observed = [r / 10.0 for r in rates]
    assert min(observed) - 1e-9 <= est.estimate <= max(observed) + 1e-9


# --------------------------------------------------------------------- queueing
@given(
    queue=st.floats(min_value=0, max_value=1e4),
    rate=st.floats(min_value=0.01, max_value=100.0),
    execution=st.floats(min_value=0.0, max_value=60.0),
)
@settings(**_SETTINGS)
def test_littles_law_nonnegative_and_monotone_in_queue(queue, rate, execution):
    model = LittlesLawModel()
    wait = model.waiting_time(queue, rate, execution)
    assert wait >= 0
    assert model.waiting_time(queue * 2, rate, execution) >= wait - 1e-9


# ------------------------------------------------------------------------- SLO
@given(
    latencies=st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=100),
    slo=st.floats(min_value=0.1, max_value=50.0),
    dropped=st.integers(min_value=0, max_value=20),
)
@settings(**_SETTINGS)
def test_violation_ratio_bounded(latencies, slo, dropped):
    ratio = violation_ratio(latencies, slo, dropped)
    assert 0.0 <= ratio <= 1.0


# ------------------------------------------------------------------------ MILP
from repro.milp.problem import Sense, VarType  # noqa: E402


def _random_problem(rng) -> MILPProblem:
    """A random bounded MILP exercising all variable types and senses."""
    problem = MILPProblem("lowering")
    n = int(rng.integers(2, 6))
    for i in range(n):
        vtype = [VarType.CONTINUOUS, VarType.INTEGER, VarType.BINARY][int(rng.integers(0, 3))]
        lower = float(rng.uniform(-3, 2))
        upper = None if (vtype != VarType.BINARY and rng.random() < 0.3) else lower + float(
            rng.uniform(0, 6)
        )
        problem.add_variable(f"v{i}", lower=lower, upper=upper, vtype=vtype)
    problem.set_objective(
        {f"v{i}": float(rng.uniform(-2, 2)) for i in range(n) if rng.random() < 0.8}
    )
    for _ in range(int(rng.integers(1, 5))):
        coeffs = {
            f"v{i}": float(rng.uniform(-2, 2)) for i in range(n) if rng.random() < 0.7
        }
        if not coeffs:
            coeffs = {"v0": 1.0}
        sense = [Sense.LE, Sense.GE, Sense.EQ][int(rng.integers(0, 3))]
        problem.add_constraint(coeffs, sense, float(rng.uniform(-5, 5)))
    return problem


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(**_SETTINGS)
def test_milp_lowering_preserves_bounds_and_integrality(seed):
    """Variable bounds and integrality survive the round-trip to linprog
    matrix form, in the declared variable order."""
    rng = np.random.default_rng(seed)
    problem = _random_problem(rng)
    mats = problem.to_matrices()
    order = mats["order"]
    assert order == list(problem.variables)
    for name, (lo, hi) in zip(order, mats["bounds"]):
        var = problem.variables[name]
        assert lo == var.lower
        assert hi == var.upper
        if var.vtype == VarType.BINARY:
            assert (lo, hi) == (max(0.0, lo), hi) and hi <= 1.0
        assert var.is_integral == (var.vtype in (VarType.INTEGER, VarType.BINARY))
    # Objective: maximisation is negated into linprog's minimisation vector.
    for i, name in enumerate(order):
        assert mats["c"][i] == pytest.approx(-problem.objective.get(name, 0.0))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(**_SETTINGS)
def test_milp_lowering_preserves_constraint_senses_and_rows(seed):
    """Every constraint lands in the right matrix block with the right sign:
    LE rows verbatim in A_ub, GE rows negated into A_ub, EQ rows in A_eq —
    in declaration order within each block."""
    rng = np.random.default_rng(seed)
    problem = _random_problem(rng)
    mats = problem.to_matrices()
    index = {name: i for i, name in enumerate(mats["order"])}
    ub_rows = [] if mats["A_ub"] is None else list(zip(mats["A_ub"], mats["b_ub"]))
    eq_rows = [] if mats["A_eq"] is None else list(zip(mats["A_eq"], mats["b_eq"]))
    ub_cursor = eq_cursor = 0
    for con in problem.constraints:
        dense = np.zeros(len(index))
        for name, coeff in con.coefficients.items():
            dense[index[name]] = coeff
        if con.sense == Sense.EQ:
            row, rhs = eq_rows[eq_cursor]
            eq_cursor += 1
            assert np.allclose(row, dense) and rhs == pytest.approx(con.rhs)
        else:
            row, rhs = ub_rows[ub_cursor]
            ub_cursor += 1
            sign = 1.0 if con.sense == Sense.LE else -1.0
            assert np.allclose(row, sign * dense)
            assert rhs == pytest.approx(sign * con.rhs)
    assert ub_cursor == len(ub_rows) and eq_cursor == len(eq_rows)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    lo=st.floats(min_value=-2.0, max_value=2.0),
    width=st.floats(min_value=0.0, max_value=4.0),
)
@settings(**_SETTINGS)
def test_milp_lowering_extra_bounds_only_tighten(seed, lo, width):
    """Branch-and-bound bound overrides can only shrink a variable's box."""
    rng = np.random.default_rng(seed)
    problem = _random_problem(rng)
    name = next(iter(problem.variables))
    mats = problem.to_matrices(extra_bounds={name: (lo, lo + width)})
    i = mats["order"].index(name)
    tight_lo, tight_hi = mats["bounds"][i]
    var = problem.variables[name]
    assert tight_lo >= var.lower
    assert tight_lo >= lo
    if var.upper is not None:
        assert tight_hi is not None and tight_hi <= var.upper
    if tight_hi is not None:
        assert tight_hi <= lo + width + 1e-12


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_branch_and_bound_matches_exhaustive_on_random_milps(seed):
    rng = np.random.default_rng(seed)
    problem = MILPProblem("prop")
    n = int(rng.integers(2, 4))
    for i in range(n):
        problem.add_integer(f"x{i}", lower=0, upper=int(rng.integers(2, 5)))
    problem.set_objective({f"x{i}": float(rng.uniform(0.1, 2.0)) for i in range(n)})
    problem.add_le(
        {f"x{i}": float(rng.uniform(0.2, 1.5)) for i in range(n)}, float(rng.uniform(2, 8))
    )
    bnb = BranchAndBoundSolver().solve(problem)
    exh = ExhaustiveSolver().solve(problem)
    assert bnb.is_optimal == exh.is_optimal
    if bnb.is_optimal:
        assert bnb.objective == pytest.approx(exh.objective, abs=1e-6)


# --------------------------------------------- event queue lazy compaction
#: One step of an arbitrary queue workload: push at a time, cancel the k-th
#: live event, cancel the k-th already-cancelled event again (idempotence),
#: or pop the earliest live event.
_QUEUE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.floats(min_value=0.0, max_value=100.0)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("recancel"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    min_size=1,
    max_size=120,
)


@given(ops=_QUEUE_OPS)
@settings(**_SETTINGS)
def test_event_queue_compaction_preserves_live_events_under_interleaving(ops):
    """Arbitrary push/cancel/pop interleavings never lose or reorder a live event.

    The compaction threshold is lowered so the lazy-removal rebuild actually
    triggers inside the generated workloads (the production constant needs
    64+ heap entries, beyond what short sequences reach).
    """
    import repro.simulator.events as events_mod

    original = events_mod._COMPACT_MIN_SIZE
    events_mod._COMPACT_MIN_SIZE = 4
    try:
        q = EventQueue()
        live = []  # mirror: every event that is scheduled and not cancelled/popped
        dead = []  # mirror: cancelled events
        order = lambda e: (e.time, e.priority, e.seq)  # noqa: E731
        for op, value in ops:
            if op == "push":
                live.append(q.push(value, lambda: None))
            elif op == "cancel" and live:
                victim = live.pop(value % len(live))
                q.cancel(victim)
                dead.append(victim)
            elif op == "recancel" and dead:
                before = len(q)
                q.cancel(dead[value % len(dead)])  # idempotent no-op
                assert len(q) == before
            elif op == "pop" and live:
                expected = min(live, key=order)
                popped = q.pop()
                assert popped is expected
                live.remove(expected)
            assert len(q) == len(live)
            assert bool(q) == bool(live)
        # Drain: every surviving event comes out, in exact heap order.
        drained = []
        while q:
            drained.append(q.pop())
        assert drained == sorted(live, key=order)
        with pytest.raises(IndexError):
            q.pop()
    finally:
        events_mod._COMPACT_MIN_SIZE = original


# ------------------------------------------------------- P2 running quantile
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=300
    ),
    q=st.sampled_from([0.5, 0.9, 0.99]),
)
@settings(**_SETTINGS)
def test_p2_quantile_universal_invariants(values, q):
    acc = P2Quantile(q)
    for v in values:
        acc.add(v)
    est = acc.value
    assert acc.count == len(values)
    # The estimate interpolates observed marker heights: it can never leave
    # the observed range.
    assert min(values) - 1e-9 <= est <= max(values) + 1e-9
    # With five or fewer samples the estimate is the exact linear-interpolated
    # empirical quantile.
    if len(values) <= 5:
        assert est == pytest.approx(
            float(np.percentile(np.asarray(values), q * 100)), rel=1e-9, abs=1e-9
        )


#: Half-width, in percentile points, of the brute-force band the P² estimate
#: must land in.  Calibrated by exhaustive sampling over the distributions
#: below at n >= 200 (observed worst case: 8 points); doubled for margin.
_P2_BAND = 15.0


@given(
    n=st.integers(min_value=200, max_value=500),
    seed=st.integers(min_value=0, max_value=10_000),
    scale=st.floats(min_value=0.1, max_value=50.0),
    dist=st.sampled_from(["uniform", "exponential", "lognormal"]),
    q=st.sampled_from([0.5, 0.9, 0.99]),
)
@settings(**_SETTINGS)
def test_p2_quantile_within_bruteforce_percentile_band(n, seed, scale, dist, q):
    """On i.i.d. latency-like streams the estimate stays within a brute-force
    percentile band around the target quantile.

    P² is a heuristic without worst-case guarantees (adversarially ordered or
    extreme bimodal streams can push it far off), so the property is stated
    over the stream family the accumulator is deployed on: independent draws
    from continuous unimodal distributions, at the stream lengths where the
    estimator has converged past its five-marker start-up noise.
    """
    rng = np.random.default_rng(seed)
    if dist == "uniform":
        values = rng.uniform(0.0, scale, n)
    elif dist == "exponential":
        values = rng.exponential(scale, n)
    else:
        values = rng.lognormal(0.0, 1.0, n) * scale
    acc = P2Quantile(q)
    for v in values:
        acc.add(float(v))
    est = acc.value
    lo = float(np.percentile(values, max(0.0, 100.0 * q - _P2_BAND)))
    hi = float(np.percentile(values, min(100.0, 100.0 * q + _P2_BAND)))
    assert lo - 1e-9 <= est <= hi + 1e-9


# ---------------------------------------------------------------------------
# Shard-merge partition invariance (PR 6): merging per-chunk accumulators over
# ANY partition of a stream must equal accumulating the whole stream at once.
# This is the algebraic property the sharded-equals-serial live views rest on.
# ---------------------------------------------------------------------------
from repro.metrics.accumulators import GaussianStats, StreamingMoments, merge_all  # noqa: E402


def _partition(values, cut_fracs):
    """Split ``values`` at the (sorted, deduplicated) fractional cut points."""
    cuts = sorted({int(round(f * len(values))) for f in cut_fracs})
    edges = [0] + [c for c in cuts if 0 < c < len(values)] + [len(values)]
    return [values[lo:hi] for lo, hi in zip(edges, edges[1:])]


@given(
    values=st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False), min_size=1, max_size=80
    ),
    cut_fracs=st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=6),
)
@settings(**_SETTINGS)
def test_streaming_moments_merge_is_partition_invariant(values, cut_fracs):
    whole = StreamingMoments()
    whole.add_batch(values)
    parts = []
    for chunk in _partition(values, cut_fracs):
        acc = StreamingMoments()
        acc.add_batch(chunk)
        parts.append(acc)
    merged = merge_all(parts)
    assert merged.count == whole.count
    assert merged.minimum == whole.minimum
    assert merged.maximum == whole.maximum
    assert np.isclose(merged.mean, whole.mean, atol=1e-9)
    if whole.count >= 2:
        assert np.isclose(merged.variance, whole.variance, rtol=1e-9, atol=1e-9)


@given(
    n=st.integers(min_value=1, max_value=60),
    dim=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    cut_fracs=st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=6),
)
@settings(**_SETTINGS)
def test_gaussian_stats_merge_is_partition_invariant(n, dim, seed, cut_fracs):
    rng = np.random.default_rng(seed)
    features = rng.normal(scale=10.0, size=(n, dim))
    whole = GaussianStats.from_features(features)
    chunks = [chunk for chunk in _partition(features, cut_fracs) if len(chunk)]
    merged = merge_all([GaussianStats.from_features(chunk) for chunk in chunks])
    assert merged.count == whole.count
    assert np.allclose(merged.sum, whole.sum, atol=1e-9)
    assert np.allclose(merged.outer, whole.outer, rtol=1e-9, atol=1e-9)
    if n >= 2:
        assert np.allclose(merged.cov(), whole.cov(), rtol=1e-8, atol=1e-9)


def test_merge_all_rejects_empty_iterable():
    with pytest.raises(ValueError):
        merge_all([])


# ---------------------------------------------------------------------------
# Bulk scheduling and chunked arrival feeding: schedule_many_at and the
# ArrivalFeeder must be observation-equivalent to per-entry schedule_at for
# ANY chunk size (including 1 and sizes beyond the trace length).  Ties are
# covered where the production paths meet them: sorted trace order (the
# serial ClientSource) pins exact-duplicate times; routed injection relies on
# continuous draws, so the unsorted case is stated over distinct times.
# ---------------------------------------------------------------------------
from repro.core.query import Query  # noqa: E402
from repro.core.system import ArrivalFeeder  # noqa: E402
from repro.simulator.simulation import Simulator  # noqa: E402


@given(
    times=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60),
    priority=st.integers(min_value=-2, max_value=2),
)
@settings(**_SETTINGS)
def test_schedule_many_at_equals_per_entry_schedule_at(times, priority):
    def run(bulk):
        sim = Simulator(seed=0)
        fired = []
        record = lambda i: fired.append((sim.now, i))  # noqa: E731
        args_seq = [(i,) for i in range(len(times))]
        if bulk:
            sim.schedule_many_at(times, record, args_seq, priority=priority, name="a")
        else:
            for t, args in zip(times, args_seq):
                sim.schedule_at(t, record, priority=priority, name="a", args=args)
        sim.run()
        return fired

    assert run(bulk=True) == run(bulk=False)


class _StubDataset:
    """Minimal dataset protocol for the feeder: id-derived prompt/difficulty."""

    def prompt(self, query_id):
        return f"p{query_id}"

    def difficulty(self, query_id):
        return (query_id % 7) / 10.0


def _fire_chunked(times, chunk):
    sim = Simulator(seed=0)
    fired = []
    feeder = ArrivalFeeder(
        sim,
        _StubDataset(),
        lambda q: fired.append((sim.now, q.query_id, q.arrival_time, q.slo, q.difficulty)),
        5.0,
        chunk_size=chunk,
    )
    feeder.feed(range(len(times)), np.asarray(times, dtype=float))
    sim.run()
    assert feeder.scheduled_arrivals == len(times)
    assert feeder.chunks_fired == -(-len(times) // chunk)  # ceil division
    return fired


def _fire_per_query(times):
    sim = Simulator(seed=0)
    fired = []
    dataset = _StubDataset()
    for query_id, t in enumerate(times):
        query = Query(
            query_id=query_id,
            arrival_time=float(t),
            prompt=dataset.prompt(query_id),
            difficulty=dataset.difficulty(query_id),
            slo=5.0,
        )
        sim.schedule_at(
            float(t),
            lambda q=query: fired.append((sim.now, q.query_id, q.arrival_time, q.slo, q.difficulty)),
            name="arrival",
        )
    sim.run()
    return fired


@given(
    times=st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=40),
    chunk=st.integers(min_value=1, max_value=64),
)
@settings(**_SETTINGS)
def test_chunked_feeding_equals_per_query_on_sorted_traces(times, chunk):
    """Trace replay (sorted times, exact duplicates allowed): any chunk size
    delivers the same queries at the same times in the same order."""
    times = sorted(times)
    assert _fire_chunked(times, chunk) == _fire_per_query(times)


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=40, unique=True
    ),
    chunk=st.integers(min_value=1, max_value=64),
)
@settings(**_SETTINGS)
def test_chunked_feeding_equals_per_query_on_unsorted_distinct_times(times, chunk):
    """Routed injection (locally unordered, continuous draws): equivalence
    holds for any chunk size, including chunks straddling the reordering."""
    assert _fire_chunked(times, chunk) == _fire_per_query(times)


@given(
    times=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50),
)
@settings(**_SETTINGS)
def test_profiler_is_pure_observation(times):
    """profile=True never changes what fires or when; it only counts."""

    def run(profile):
        sim = Simulator(seed=0, profile=profile)
        fired = []
        record = lambda i: fired.append((sim.now, i))  # noqa: E731
        sim.schedule_many_at(times, record, [(i,) for i in range(len(times))], name="tick")
        sim.run()
        return fired, sim.profile_snapshot()

    fired_off, profile_off = run(profile=False)
    fired_on, profile_on = run(profile=True)
    assert fired_on == fired_off
    assert profile_off == {}
    assert profile_on["tick"][0] == len(times)
    assert profile_on["tick"][1] >= 0.0
