"""Tests for workload traces."""

import numpy as np
import pytest

from repro.traces.azure import azure_functions_like_rate, trace_1to8qps, trace_4to32qps
from repro.traces.base import ArrivalTrace, RateCurve
from repro.traces.synthetic import burst_rate, diurnal_rate, static_rate, step_rate


def test_rate_curve_interpolation_and_bounds():
    curve = RateCurve(times=np.array([0.0, 10.0]), rates=np.array([2.0, 4.0]))
    assert curve.rate_at(0.0) == pytest.approx(2.0)
    assert curve.rate_at(5.0) == pytest.approx(3.0)
    assert curve.rate_at(100.0) == pytest.approx(4.0)  # clamped
    assert curve.peak == 4.0 and curve.minimum == 2.0
    assert curve.mean_rate() == pytest.approx(3.0)


def test_rate_curve_validation():
    with pytest.raises(ValueError):
        RateCurve(times=np.array([0.0, 1.0]), rates=np.array([1.0]))
    with pytest.raises(ValueError):
        RateCurve(times=np.array([1.0, 0.0]), rates=np.array([1.0, 1.0]))
    with pytest.raises(ValueError):
        RateCurve(times=np.array([0.0, 1.0]), rates=np.array([1.0, -1.0]))


def test_scaled_preserves_shape():
    curve = diurnal_rate(1.0, 10.0, duration=100.0)
    scaled = curve.scaled(4.0, 32.0)
    assert scaled.minimum == pytest.approx(4.0, abs=1e-6)
    assert scaled.peak == pytest.approx(32.0, abs=1e-6)
    # Shape preservation: peaks occur at the same time.
    assert np.argmax(scaled.rates) == np.argmax(curve.rates)
    with pytest.raises(ValueError):
        curve.scaled(10.0, 5.0)


def test_static_step_burst_rates():
    static = static_rate(5.0, 100.0)
    assert static.rate_at(50.0) == 5.0
    step = step_rate(2.0, 10.0, duration=100.0, step_at=50.0)
    assert step.rate_at(10.0) == pytest.approx(2.0)
    assert step.rate_at(90.0) == pytest.approx(10.0)
    burst = burst_rate(2.0, 20.0, duration=100.0, burst_start=40.0, burst_length=10.0)
    assert burst.rate_at(45.0) == pytest.approx(20.0)
    assert burst.rate_at(5.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        static_rate(-1.0, 10.0)
    with pytest.raises(ValueError):
        step_rate(1.0, 2.0, duration=10.0, step_at=20.0)
    with pytest.raises(ValueError):
        burst_rate(1.0, 2.0, duration=10.0, burst_start=8.0, burst_length=5.0)


def test_azure_like_trace_range_and_determinism():
    curve = azure_functions_like_rate(4, 32, duration=360, seed=1)
    assert curve.minimum == pytest.approx(4.0, abs=1e-6)
    assert curve.peak == pytest.approx(32.0, abs=1e-6)
    again = azure_functions_like_rate(4, 32, duration=360, seed=1)
    assert np.allclose(curve.rates, again.rates)
    different = azure_functions_like_rate(4, 32, duration=360, seed=2)
    assert not np.allclose(curve.rates, different.rates)
    with pytest.raises(ValueError):
        azure_functions_like_rate(10, 5)


def test_named_paper_traces():
    assert trace_4to32qps().peak == pytest.approx(32.0, abs=1e-6)
    assert trace_1to8qps().minimum == pytest.approx(1.0, abs=1e-6)


def test_arrival_trace_sampling_matches_rate():
    curve = static_rate(20.0, 200.0)
    trace = ArrivalTrace.from_rate_curve(curve, np.random.default_rng(0))
    # Poisson process: expect ~4000 arrivals within 10%.
    assert len(trace) == pytest.approx(4000, rel=0.1)
    assert trace.duration <= 200.0
    assert np.all(np.diff(trace.arrival_times) >= 0)


def test_arrival_trace_nonhomogeneous_follows_curve():
    curve = step_rate(2.0, 20.0, duration=200.0, step_at=100.0)
    trace = ArrivalTrace.from_rate_curve(curve, np.random.default_rng(0))
    first_half = np.sum(trace.arrival_times < 100.0)
    second_half = np.sum(trace.arrival_times >= 100.0)
    assert second_half > 5 * first_half


def test_arrival_trace_constant_rate_and_observed_rate():
    trace = ArrivalTrace.constant_rate(10.0, 100.0, np.random.default_rng(0))
    rates = trace.observed_rate(window=10.0)
    assert rates.mean() == pytest.approx(10.0, rel=0.15)
    with pytest.raises(ValueError):
        trace.observed_rate(0.0)


def test_arrival_trace_max_queries_cap():
    curve = static_rate(50.0, 1000.0)
    trace = ArrivalTrace.from_rate_curve(curve, np.random.default_rng(0), max_queries=100)
    assert len(trace) == 100


def test_arrival_trace_validation():
    with pytest.raises(ValueError):
        ArrivalTrace(arrival_times=np.array([2.0, 1.0]))
    with pytest.raises(ValueError):
        ArrivalTrace(arrival_times=np.array([-1.0, 1.0]))
    empty = ArrivalTrace(arrival_times=np.array([]))
    assert len(empty) == 0 and empty.duration == 0.0
