"""Tests for typed device fleets: config, profiles, MILP, control plane.

The homogeneous regression pins here were recorded from the pre-fleet
allocator (one ``LatencyProfile`` per variant, ``x1``/``x2`` MILP): the
default single-class fleet must keep reproducing those decisions exactly.
"""

import pytest

from repro.core.allocator import AllocationPlan, ControlContext, DiffServeAllocator
from repro.core.config import (
    DEVICE_CLASSES,
    DeviceClass,
    FleetSpec,
    SystemConfig,
    fleet_from_counts,
    get_device_class,
)
from repro.models.zoo import get_cascade, variant_profile


def mixed_fleet(**counts) -> FleetSpec:
    return fleet_from_counts(counts)


# ------------------------------------------------------------- device classes
def test_device_class_catalog_and_lookup():
    assert set(DEVICE_CLASSES) >= {"a100", "h100", "l4", "t4"}
    a100 = get_device_class("a100")
    assert a100.speed_factor == 1.0 and a100.cost_per_hour == 1.0
    assert get_device_class("h100").speed_factor < 1.0 < get_device_class("l4").speed_factor
    with pytest.raises(KeyError, match="unknown device class 'b200'"):
        get_device_class("b200")


def test_device_class_validation_one_line_messages():
    with pytest.raises(ValueError, match="'bad': speed_factor must be positive"):
        DeviceClass("bad", speed_factor=0.0)
    with pytest.raises(ValueError, match="'bad': memory_gb must be positive"):
        DeviceClass("bad", memory_gb=-1.0)
    with pytest.raises(ValueError, match="'bad': cost_per_hour must be positive"):
        DeviceClass("bad", cost_per_hour=0.0)


def test_memory_tier_gates_variant_hosting(cascade1):
    sdxl = get_cascade("sdxlltn").heavy
    t4 = get_device_class("t4")
    assert not t4.can_host(sdxl)
    assert get_device_class("a100").can_host(sdxl)
    assert t4.can_host(cascade1.light)


# ----------------------------------------------------------------- fleet spec
def test_fleet_validation_is_centralised_with_one_line_errors():
    with pytest.raises(ValueError, match="at least one device class"):
        FleetSpec(devices=())
    with pytest.raises(ValueError, match="fleet class 'a100': count must be >= 1, got 0"):
        FleetSpec.homogeneous(0)
    with pytest.raises(ValueError, match="fleet class 'l4': count must be an integer"):
        fleet_from_counts({"l4": 2.5})
    with pytest.raises(ValueError, match="listed more than once"):
        FleetSpec(devices=((get_device_class("a100"), 1), (get_device_class("a100"), 2)))
    with pytest.raises(KeyError, match="unknown device class 'b200'"):
        fleet_from_counts({"b200": 4})
    # SystemConfig and ControlContext both route through the same validation.
    cascade = get_cascade("sdturbo")
    with pytest.raises(ValueError, match="fleet class 'a100': count must be >= 1"):
        SystemConfig(cascade=cascade, num_workers=0)
    with pytest.raises(ValueError, match="fleet class 'a100': count must be >= 1"):
        ControlContext(demand=1.0, slo=5.0, num_workers=0)


def test_fleet_canonical_order_totals_and_cost():
    fleet = mixed_fleet(l4=8, a100=4, h100=2)
    assert [d.name for d in fleet.classes] == ["a100", "h100", "l4"]  # name-sorted
    assert fleet.total_workers == 14
    assert fleet.total_cost == pytest.approx(4 * 1.0 + 2 * 1.8 + 8 * 0.3)
    assert fleet.token() == "a100:4,h100:2,l4:8"
    assert fleet.count_for("l4") == 8 and fleet.count_for("t4") == 0
    assert not fleet.is_homogeneous
    assert FleetSpec.homogeneous(16).is_homogeneous


def test_system_config_num_workers_is_a_deprecated_alias():
    cascade = get_cascade("sdturbo")
    config = SystemConfig(cascade=cascade, num_workers=5)
    assert config.fleet == FleetSpec.homogeneous(5)
    assert config.num_workers == 5
    # An explicit fleet wins and the alias reads back as its total.
    config = SystemConfig(cascade=cascade, num_workers=99, fleet=mixed_fleet(a100=2, l4=3))
    assert config.num_workers == 5


def test_control_context_accepts_fleet_or_alias():
    ctx = ControlContext(demand=1.0, slo=5.0, num_workers=4)
    assert ctx.fleet == FleetSpec.homogeneous(4)
    assert ctx.num_workers == 4
    ctx = ControlContext(demand=1.0, slo=5.0, fleet=mixed_fleet(a100=2, l4=3))
    assert ctx.num_workers == 5
    with pytest.raises(ValueError, match="requires a fleet"):
        ControlContext(demand=1.0, slo=5.0)


# ------------------------------------------------- per-device latency profiles
def test_variant_profile_scales_per_device_class(cascade1):
    light = cascade1.light
    l4 = get_device_class("l4")
    base = variant_profile(light, None)
    scaled = variant_profile(light, l4)
    assert base is light.latency
    assert scaled.per_image == pytest.approx(light.latency.per_image * l4.speed_factor)
    assert scaled.fixed_overhead == pytest.approx(
        light.latency.fixed_overhead * l4.speed_factor
    )
    # Batching behaviour and jitter are model properties: unchanged.
    assert scaled.batching_gain == light.latency.batching_gain
    assert scaled.jitter == light.latency.jitter
    # Memoized: same object per (variant, class); baseline class shares the
    # variant's own profile object.
    assert variant_profile(light, l4) is scaled
    assert variant_profile(light, get_device_class("a100")) is light.latency
    with pytest.raises(ValueError):
        light.latency.scaled(0.0)


def test_worker_on_slow_device_executes_and_reloads_slower(cascade1):
    from repro.core.worker import Worker
    from repro.models.generation import ImageGenerator
    from repro.simulator.simulation import Simulator

    sim = Simulator(seed=0)
    generator = ImageGenerator(seed=0)
    l4 = get_device_class("l4")
    slow = Worker(sim, worker_id=0, variant=cascade1.light, generator=generator,
                  reload_latency=0.5, device=l4)
    fast = Worker(sim, worker_id=1, variant=cascade1.light, generator=generator,
                  reload_latency=0.5, device=get_device_class("a100"))
    assert slow.device_name == "l4" and fast.device_name == "a100"
    assert slow.latency_profile.latency(4) == pytest.approx(
        fast.latency_profile.latency(4) * l4.speed_factor, rel=1e-9
    )
    assert slow.reload_latency == pytest.approx(0.5 * l4.reload_factor)
    assert fast.reload_latency == pytest.approx(0.5)
    # Variant switches keep the device profile.
    slow.set_variant(cascade1.heavy)
    assert slow.latency_profile is variant_profile(cascade1.heavy, l4)


# ------------------------------------------------ homogeneous regression pins
#: (demand, num_light, num_heavy, light_batch, heavy_batch, threshold,
#:  heavy_fraction, feasible) recorded from the pre-fleet allocator on the
#: session fixtures (16 workers, SLO 5, observed deferral 0.4).
PRE_FLEET_PLANS = [
    (3.0, 1, 15, 16, 1, 1.0, 0.865, True),
    (6.0, 1, 15, 16, 1, 1.0, 0.865, True),
    (10.0, 2, 14, 1, 2, 0.96528, 0.85, True),
    (16.0, 2, 14, 1, 2, 0.410502, 0.5, True),
    (22.0, 3, 13, 1, 2, 0.233784, 0.3525, True),
    (28.0, 4, 12, 1, 2, 0.140007, 0.2525, True),
]


def test_default_fleet_reproduces_pre_fleet_allocator_decisions(allocator):
    for demand, nl, nh, lb, hb, threshold, fraction, feasible in PRE_FLEET_PLANS:
        plan = allocator.plan(
            ControlContext(demand=demand, slo=5.0, num_workers=16, observed_deferral=0.4)
        )
        assert plan.feasible == feasible
        assert (plan.num_light, plan.num_heavy) == (nl, nh)
        assert (plan.light_batch, plan.heavy_batch) == (lb, hb)
        assert plan.threshold == pytest.approx(threshold, abs=1e-6)
        assert plan.heavy_fraction == pytest.approx(fraction, abs=1e-6)
        # The typed assignment mirrors the totals on the single class.
        assert plan.light_assignment == {"a100": nl}
        assert plan.heavy_assignment == {"a100": nh}


def test_explicit_homogeneous_fleet_equals_num_workers_alias(allocator):
    via_alias = allocator.plan(
        ControlContext(demand=16.0, slo=5.0, num_workers=16, observed_deferral=0.4)
    )
    via_fleet = allocator.plan(
        ControlContext(
            demand=16.0, slo=5.0, fleet=FleetSpec.homogeneous(16), observed_deferral=0.4
        )
    )
    assert (via_alias.num_light, via_alias.num_heavy) == (
        via_fleet.num_light,
        via_fleet.num_heavy,
    )
    assert via_alias.threshold == pytest.approx(via_fleet.threshold)


# ------------------------------------------------------------ mixed-fleet MILP
def test_mixed_fleet_problem_indexes_variables_by_class(allocator):
    ctx = ControlContext(
        demand=16.0, slo=5.0, fleet=mixed_fleet(a100=8, h100=4), observed_deferral=0.4
    )
    problem = allocator.build_problem(ctx, 1, 2, 16.8)
    names = set(problem.variables)
    assert {"x1[a100]", "x1[h100]", "x2[a100]", "x2[h100]", "f"} <= names
    assert "x1" not in names
    constraint_names = [c.name for c in problem.constraints]
    assert "capacity[a100]" in constraint_names
    assert "capacity[h100]" in constraint_names
    assert "min-light" in constraint_names
    # Per-class capacity bounds the split by the class's count.
    for device, count in ctx.fleet.devices:
        assert problem.variables[f"x1[{device.name}]"].upper == count
        assert problem.variables[f"x2[{device.name}]"].upper == count


def test_memory_tier_excludes_class_from_heavy_pool_variables(deferral_profile):
    cascade3 = get_cascade("sdxlltn")  # heavy = SDXL, 24 GB
    allocator = DiffServeAllocator(cascade3.light, cascade3.heavy, deferral_profile)
    ctx = ControlContext(
        demand=4.0, slo=15.0, fleet=mixed_fleet(a100=4, t4=4), observed_deferral=0.3
    )
    problem = allocator.build_problem(ctx, 1, 1, 4.2)
    assert "x2[t4]" not in problem.variables  # SDXL does not fit a T4
    assert "x1[t4]" in problem.variables  # SDXL-Lightning (16 GB) does
    assert "x2[a100]" in problem.variables


def test_mixed_fleet_plan_respects_per_class_capacity(allocator):
    fleet = mixed_fleet(a100=8, h100=4, l4=8)
    plan = allocator.plan(
        ControlContext(demand=20.0, slo=5.0, fleet=fleet, observed_deferral=0.4)
    )
    assert plan.feasible
    assert plan.light_assignment is not None and plan.heavy_assignment is not None
    for name in set(plan.light_assignment) | set(plan.heavy_assignment):
        used = plan.light_assignment.get(name, 0) + plan.heavy_assignment.get(name, 0)
        assert used <= fleet.count_for(name)
    assert sum(plan.light_assignment.values()) == plan.num_light
    assert sum(plan.heavy_assignment.values()) == plan.num_heavy
    assert plan.total_workers <= fleet.total_workers


def test_mixed_fleet_beats_equal_cost_homogeneous_capacity(allocator):
    """At high demand, the typed MILP finds more deferral capacity in a mixed
    fleet than the same-cost homogeneous one (cheap devices soak up the light
    pool, freeing the fast tier for the heavy model)."""
    homo = allocator.plan(
        ControlContext(demand=30.0, slo=5.0, fleet=mixed_fleet(a100=16), observed_deferral=0.4)
    )
    mixed = allocator.plan(
        ControlContext(
            demand=30.0, slo=5.0, fleet=mixed_fleet(h100=7, l4=11), observed_deferral=0.4
        )
    )
    assert homo.feasible and mixed.feasible
    assert mixed.threshold >= homo.threshold - 1e-9


# -------------------------------------------------------- spare-worker policy
def test_spare_workers_deterministic_tiebreak_under_mixed_fleet(allocator):
    """Pins the spare-assignment order: fastest class first (ascending
    speed_factor, then name), spares join the preferred pool only where the
    class is eligible for it, and classes eligible for neither stay idle."""
    fleet = mixed_fleet(a100=4, h100=2, l4=4)
    classes = {d.name: d for d in fleet.classes}
    plan = AllocationPlan(
        num_light=2,
        num_heavy=2,
        light_batch=4,
        heavy_batch=2,
        threshold=0.5,
        heavy_fraction=0.4,
        light_assignment={"l4": 2},
        heavy_assignment={"a100": 2},
    )
    out = allocator._assign_spare_workers(
        plan,
        fleet,
        light_classes=[classes["l4"]],
        heavy_classes=[classes["a100"], classes["h100"]],
    )
    # Deferring plan: spares prefer heavy.  h100 (fastest) and a100 are
    # heavy-eligible; l4 is light-only; nothing is left idle here.
    assert out.heavy_assignment == {"a100": 4, "h100": 2}
    assert out.light_assignment == {"l4": 4}
    assert out.num_light == 4 and out.num_heavy == 6
    assert out.total_workers == fleet.total_workers


def test_spare_workers_ineligible_class_stays_idle(allocator):
    fleet = mixed_fleet(a100=2, t4=2)
    classes = {d.name: d for d in fleet.classes}
    plan = AllocationPlan(
        num_light=1,
        num_heavy=1,
        light_batch=1,
        heavy_batch=1,
        threshold=0.5,
        heavy_fraction=0.4,
        light_assignment={"a100": 1},
        heavy_assignment={"a100": 1},
    )
    out = allocator._assign_spare_workers(
        plan, fleet, light_classes=[classes["a100"]], heavy_classes=[classes["a100"]]
    )
    # The t4s are eligible for neither pool: they stay idle rather than
    # being force-assigned.
    assert out.light_assignment == {"a100": 1}
    assert out.heavy_assignment == {"a100": 1}
    assert out.total_workers == 2


def test_spare_workers_legacy_totals_rule_for_class_agnostic_plans(allocator):
    plan = AllocationPlan(
        num_light=2, num_heavy=2, light_batch=1, heavy_batch=1, threshold=0.5,
        heavy_fraction=0.4,
    )
    out = allocator._assign_spare_workers(plan, FleetSpec.homogeneous(8))
    assert (out.num_light, out.num_heavy) == (2, 6)  # spares to the deferring pool
    plan = AllocationPlan(
        num_light=2, num_heavy=0, light_batch=1, heavy_batch=1, threshold=0.0,
        heavy_fraction=0.0,
    )
    out = allocator._assign_spare_workers(plan, FleetSpec.homogeneous(8))
    assert (out.num_light, out.num_heavy) == (8, 0)


# ------------------------------------------------- warm starts across reshapes
def test_warm_start_repair_survives_fleet_shape_change(allocator):
    """A warm plan referencing a device class whose count shrank (or that
    disappeared entirely) must be repaired onto the new shape, not crash."""
    big = mixed_fleet(a100=8, h100=4, l4=8)
    plan = allocator.plan(
        ControlContext(demand=20.0, slo=5.0, fleet=big, observed_deferral=0.4)
    )
    assert plan.feasible
    # Same classes, shrunk counts.
    shrunk = mixed_fleet(a100=4, h100=2, l4=4)
    repaired = allocator.plan(
        ControlContext(demand=12.0, slo=5.0, fleet=shrunk, observed_deferral=0.4),
        warm_start=plan,
    )
    assert repaired.feasible
    for name in set(repaired.light_assignment) | set(repaired.heavy_assignment):
        used = repaired.light_assignment.get(name, 0) + repaired.heavy_assignment.get(name, 0)
        assert used <= shrunk.count_for(name)
    # A class from the warm plan vanishes entirely.
    no_h100 = mixed_fleet(a100=8, l4=8)
    repaired = allocator.plan(
        ControlContext(demand=12.0, slo=5.0, fleet=no_h100, observed_deferral=0.4),
        warm_start=plan,
    )
    assert repaired.feasible
    assert "h100" not in (repaired.light_assignment or {})
    assert "h100" not in (repaired.heavy_assignment or {})


def test_warm_assignment_clamps_to_current_fleet(allocator):
    fleet = mixed_fleet(a100=2, l4=4)
    ctx = ControlContext(demand=8.0, slo=5.0, fleet=fleet, observed_deferral=0.4)
    stale = AllocationPlan(
        num_light=6,
        num_heavy=6,
        light_batch=1,
        heavy_batch=2,
        threshold=0.5,
        heavy_fraction=0.4,
        light_assignment={"l4": 6},           # l4 count shrank to 4
        heavy_assignment={"a100": 4, "h100": 2},  # h100 no longer exists
    )
    classes = {d.name: d for d in fleet.classes}
    assignment = allocator._warm_assignment(
        stale, 1, 2, 8.4, ctx,
        light_classes=[classes["a100"], classes["l4"]],
        heavy_classes=[classes["a100"], classes["l4"]],
    )
    assert set(assignment) == {"x1[a100]", "x1[l4]", "x2[a100]", "x2[l4]", "f"}
    assert assignment["x1[l4]"] <= 4
    assert assignment["x2[a100]"] <= 2
    assert 0.0 <= assignment["f"] <= 1.0


def test_warm_start_from_legacy_totals_only_plan(allocator):
    """Class-agnostic warm plans (no per-class assignment) are spread over the
    fleet instead of rejected."""
    fleet = mixed_fleet(a100=8, h100=4)
    legacy = AllocationPlan(
        num_light=2, num_heavy=10, light_batch=1, heavy_batch=2, threshold=0.4,
        heavy_fraction=0.4,
    )
    plan = allocator.plan(
        ControlContext(demand=16.0, slo=5.0, fleet=fleet, observed_deferral=0.4),
        warm_start=legacy,
    )
    assert plan.feasible


# ------------------------------------------------------------- control plane
def test_controller_maps_typed_assignments_onto_device_groups(coco_dataset, cascade1):
    from repro.baselines.clipper import ClipperPolicy
    from repro.core.config import RoutingMode
    from repro.core.controller import Controller
    from repro.core.load_balancer import LoadBalancer
    from repro.core.repository import ModelRepository
    from repro.core.results import ResultCollector
    from repro.core.worker import Worker
    from repro.models.generation import ImageGenerator
    from repro.simulator.simulation import Simulator

    fleet = mixed_fleet(a100=2, l4=3)
    config = SystemConfig(cascade=cascade1, fleet=fleet, routing=RoutingMode.CASCADE)
    sim = Simulator(seed=0)
    generator = ImageGenerator(seed=0)
    workers = []
    for device, count in fleet.devices:
        for _ in range(count):
            workers.append(
                Worker(sim, worker_id=len(workers), variant=cascade1.light,
                       generator=generator, device=device)
            )
    lb = LoadBalancer(sim, routing=RoutingMode.CASCADE)
    controller = Controller(
        sim, config, workers, lb, ResultCollector(coco_dataset),
        ClipperPolicy(cascade1.light), ModelRepository(), None,
    )
    plan = AllocationPlan(
        num_light=2, num_heavy=2, light_batch=1, heavy_batch=1, threshold=0.5,
        light_assignment={"a100": 1, "l4": 1}, heavy_assignment={"a100": 1, "l4": 1},
    )
    controller._apply_plan(plan)
    assert [w.device_name for w in lb.light_pool] == ["a100", "l4"]
    assert [w.device_name for w in lb.heavy_pool] == ["a100", "l4"]
    # The fifth worker (second spare l4) received no assignment: idle.
    assert len(lb.light_pool) + len(lb.heavy_pool) == 4

    # set_fleet shrinks the active fleet; over-shrinking is rejected with the
    # offending class named.
    controller.set_fleet(mixed_fleet(a100=1, l4=2))
    assert controller.active_fleet.total_workers == 3
    with pytest.raises(ValueError, match="fleet class 'l4': count 9 exceeds"):
        controller.set_fleet(mixed_fleet(l4=9))


def test_mixed_fleet_simulation_end_to_end(coco_dataset, trained_discriminator, cascade1):
    from repro.core.system import build_diffserve_system

    system = build_diffserve_system(
        "sdturbo",
        fleet=mixed_fleet(a100=2, l4=4),
        dataset=coco_dataset,
        discriminator=trained_discriminator,
        seed=0,
    )
    from repro.workloads import make_workload

    result = system.run(make_workload("static", duration=20.0, qps=4.0))
    summary = result.summary()
    assert summary["completed"] > 0
    assert 0.0 <= summary["slo_violation_ratio"] <= 1.0


# --------------------------------------------------------------- fleet study
def test_heterogeneity_study_is_deterministic_and_serial_equals_pool(tmp_path, monkeypatch):
    import json

    from repro.experiments.harness import ExperimentScale
    from repro.experiments.heterogeneity import run_heterogeneity

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    scale = ExperimentScale(dataset_size=60, trace_duration=12.0, num_workers=2, seed=0)
    fleets = (("a100x2", {"a100": 2}), ("mix", {"a100": 1, "l4": 3}))

    def snapshot(jobs, use_cache):
        result = run_heterogeneity(
            scale=scale, fleets=fleets, workloads=("mmpp",), qps=4.0,
            jobs=jobs, use_cache=use_cache,
        )
        return json.dumps(
            {k: {n: a.summary for n, a in arms.items()} for k, arms in result.arms.items()},
            sort_keys=True,
        )

    serial = snapshot(jobs=1, use_cache=True)
    # Byte-identical on repeat (cache hit) and with the cache bypassed.
    assert snapshot(jobs=1, use_cache=True) == serial
    assert snapshot(jobs=1, use_cache=False) == serial
    # Byte-identical across the process pool.
    assert snapshot(jobs=2, use_cache=False) == serial


def test_heterogeneity_rejects_unequal_cost_fleets():
    from repro.experiments.heterogeneity import resolve_fleets

    with pytest.raises(ValueError, match="equal-cost comparison"):
        resolve_fleets((("ref", {"a100": 16}), ("cheap", {"l4": 4})))
    resolved = resolve_fleets((("ref", {"a100": 16}), ("mix", {"h100": 7, "l4": 11})))
    assert [name for name, _ in resolved] == ["ref", "mix"]
