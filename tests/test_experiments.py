"""Smoke + shape tests for the experiment runners (small scales).

Heavier, paper-facing assertions live in the benchmark harness; these tests
check that each experiment runs, produces sane structures, and preserves the
headline qualitative findings at reduced scale.
"""

import numpy as np
import pytest

from repro.experiments import fig1_motivation, fig1_pareto, milp_overhead, reuse_study
from repro.experiments.cascade_eval import CascadeEvaluator
from repro.experiments.harness import (
    DEFAULT_QPS_RANGE,
    ExperimentScale,
    default_trace,
    format_table,
    shared_components,
)

SMALL = ExperimentScale(dataset_size=200, trace_duration=90.0, num_workers=16)


def test_experiment_scale_validation():
    with pytest.raises(ValueError):
        ExperimentScale(dataset_size=10)
    with pytest.raises(ValueError):
        ExperimentScale(trace_duration=0.0)
    with pytest.raises(ValueError):
        ExperimentScale(num_workers=1)


def test_shared_components_and_default_trace():
    cascade, dataset, discriminator = shared_components("sdturbo", SMALL)
    assert cascade.name == "sdturbo"
    assert len(dataset) == SMALL.dataset_size
    assert discriminator.latency_s > 0
    curve, trace = default_trace("sdturbo", SMALL)
    lo, hi = DEFAULT_QPS_RANGE["sdturbo"]
    assert curve.peak == pytest.approx(hi, abs=1e-6)
    assert len(trace) > 100


def test_format_table_renders_all_rows():
    text = format_table(["a", "b"], [["x", 1.0], ["longer", 2.5]])
    assert "longer" in text and "2.500" in text
    assert len(text.splitlines()) == 4


# --------------------------------------------------------------- cascade eval
def test_cascade_evaluator_single_model_points(coco_dataset, cascade1):
    evaluator = CascadeEvaluator(coco_dataset, cascade1.light, cascade1.heavy, n_queries=200)
    light = evaluator.single_model_point("light")
    heavy = evaluator.single_model_point("heavy")
    assert heavy.fid < light.fid
    assert heavy.mean_latency > light.mean_latency


def test_cascade_sweep_monotone_deferral(coco_dataset, cascade1, trained_discriminator):
    evaluator = CascadeEvaluator(coco_dataset, cascade1.light, cascade1.heavy, n_queries=200)
    curve = evaluator.sweep(trained_discriminator, np.linspace(0, 1, 6))
    fractions = [p.deferral_fraction for p in curve.points]
    assert all(b >= a - 1e-9 for a, b in zip(fractions, fractions[1:]))
    latencies = [p.mean_latency for p in curve.points]
    assert all(b >= a - 1e-9 for a, b in zip(latencies, latencies[1:]))


# --------------------------------------------------------------------- fig 1a
def test_fig1a_discriminator_beats_metric_thresholds():
    result = fig1_motivation.run_fig1a("sdturbo", SMALL, n_thresholds=7)
    disc = result.curves["discriminator"].best_fid()
    assert disc < result.curves["pickscore"].best_fid() + 0.2
    assert disc < result.curves["clipscore"].best_fid() + 0.2
    assert disc < result.curves["random"].best_fid() + 0.2
    # PickScore / CLIPScore are no better than random (within tolerance).
    assert result.curves["pickscore"].best_fid() > result.curves["random"].best_fid() - 1.0
    assert len(result.variant_points) >= 3


# --------------------------------------------------------------------- fig 1b
def test_fig1b_easy_fraction_in_paper_band():
    result = fig1_motivation.run_fig1b("sdturbo", SMALL)
    assert 0.1 <= result.easy_fraction_confidence <= 0.6
    assert 0.1 <= result.easy_fraction_pickscore <= 0.6
    xs, ys = result.cdf("confidence")
    assert np.all(np.diff(ys) >= 0)
    assert ys[-1] == pytest.approx(1.0)


# --------------------------------------------------------------------- fig 1c
def test_fig1c_pareto_frontier_properties():
    result = fig1_pareto.run_fig1c(scale=SMALL, n_thresholds=5, num_workers=10)
    assert result.num_configurations > 100
    xs, ys = result.frontier_arrays()
    assert len(xs) >= 2
    # Along the frontier, higher throughput must cost (weakly) higher FID.
    assert np.all(np.diff(xs) > 0)
    assert np.all(np.diff(ys) >= -1e-9)


# -------------------------------------------------------------- MILP overhead
def test_milp_overhead_fast_and_consistent():
    result = milp_overhead.run_milp_overhead(scale=SMALL, demands=(4.0, 16.0, 28.0))
    assert result.mean_time_ms < 500.0
    assert result.always_agrees
    assert len(result.thresholds) == 3
    # Threshold falls (weakly) as demand rises.
    assert result.thresholds[0] >= result.thresholds[-1] - 1e-9


# ----------------------------------------------------------------- reuse study
def test_reuse_study_matches_paper_direction():
    result = reuse_study.run_reuse_study(("sdturbo", "sdxs"), SMALL)
    # SD-Turbo latents are compatible: no significant FID change.
    assert abs(result.fid_change("sdturbo")) < 0.3
    # SDXS latents are not: FID increases noticeably (paper: 18.55 -> 19.75).
    assert result.fid_change("sdxs") > 0.3
