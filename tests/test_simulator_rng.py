"""Tests for the named random streams."""

import numpy as np

from repro.simulator.rng import RandomStreams


def test_same_seed_same_stream_is_reproducible():
    a = RandomStreams(seed=7).stream("arrivals").random(10)
    b = RandomStreams(seed=7).stream("arrivals").random(10)
    assert np.allclose(a, b)


def test_different_names_give_independent_streams():
    streams = RandomStreams(seed=7)
    a = streams.stream("arrivals").random(10)
    b = streams.stream("difficulty").random(10)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("x").random(10)
    b = RandomStreams(seed=2).stream("x").random(10)
    assert not np.allclose(a, b)


def test_stream_is_cached_and_stateful():
    streams = RandomStreams(seed=0)
    first = streams.stream("x").random(5)
    second = streams.stream("x").random(5)
    # The same generator keeps advancing; draws must not repeat.
    assert not np.allclose(first, second)


def test_spawn_indexed_substreams_differ():
    streams = RandomStreams(seed=0)
    a = streams.spawn("worker", 0).random(5)
    b = streams.spawn("worker", 1).random(5)
    assert not np.allclose(a, b)


def test_getitem_is_alias_for_stream():
    streams = RandomStreams(seed=0)
    assert streams["abc"] is streams.stream("abc")


def test_reset_restores_initial_state():
    streams = RandomStreams(seed=3)
    first = streams.stream("x").random(5)
    streams.reset()
    again = streams.stream("x").random(5)
    assert np.allclose(first, again)


def test_stream_name_independent_of_pythonhashseed():
    # The key derivation must be stable (sha256-based), so two instances in
    # the same process (and across processes) agree.
    a = RandomStreams(seed=11).stream("load-balancer").random(3)
    b = RandomStreams(seed=11).stream("load-balancer").random(3)
    assert np.allclose(a, b)
