"""Legacy setup shim.

Allows ``pip install -e . --no-use-pep517`` on environments that lack the
``wheel`` package (offline machines); normal installs use ``pyproject.toml``.
"""

from setuptools import setup

setup()
